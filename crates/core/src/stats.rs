//! Aggregate run statistics — one [`SimStats`] per simulation, carrying
//! everything the paper's figures report.

use gmh_cache::{L1StallCounters, L2StallCounters};
use gmh_simt::IssueStallCounters;
use gmh_types::{AuditSummary, OccupancyHistogram, TelemetrySnapshot, TraceData};

/// Results of one simulated run.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Core cycles simulated.
    pub core_cycles: u64,
    /// Warp instructions issued across all cores.
    pub insts: u64,
    /// Instructions per core-cycle, summed over cores.
    pub ipc: f64,
    /// Issue-stall classification, merged over cores (Figs. 1, 7).
    pub issue: IssueStallCounters,
    /// L1 stall attribution, merged over cores (Fig. 9).
    pub l1_stalls: L1StallCounters,
    /// L2 stall attribution, merged over banks (Fig. 8).
    pub l2_stalls: L2StallCounters,
    /// Average memory latency of L1 misses, in core cycles (Fig. 1 AML).
    pub aml_core_cycles: f64,
    /// Median L1-miss round trip, in core cycles.
    pub aml_p50: f64,
    /// 90th-percentile L1-miss round trip, in core cycles.
    pub aml_p90: f64,
    /// 99th-percentile L1-miss round trip, in core cycles — the tail that
    /// actually stalls warps.
    pub aml_p99: f64,
    /// Average L2-hit round trip, in core cycles (Fig. 1 L2-AHL).
    pub l2_ahl_core_cycles: f64,
    /// Fraction of runtime the cores were issue-stalled (Fig. 1 Stall).
    pub stall_fraction: f64,
    /// L2 access-queue occupancy, merged over banks (Fig. 4).
    pub l2_access_occupancy: OccupancyHistogram,
    /// DRAM scheduler-queue occupancy, merged over channels (Fig. 5).
    pub dram_queue_occupancy: OccupancyHistogram,
    /// DRAM bandwidth efficiency (busy / pending cycles), averaged over
    /// channels (§IV-B.1).
    pub dram_efficiency: f64,
    /// L1D read miss rate (merges count as misses).
    pub l1_miss_rate: f64,
    /// L2 read miss rate (merges count as misses).
    pub l2_miss_rate: f64,
    /// Whether the run hit the core-cycle safety cap before draining.
    pub hit_cycle_cap: bool,
    /// Windowed time series of queue occupancies, stall causes and flit
    /// rates at every level of the hierarchy (see
    /// [`gmh_types::Telemetry`]); export with
    /// [`TelemetrySnapshot::to_json`] / [`TelemetrySnapshot::to_csv`].
    pub telemetry: TelemetrySnapshot,
    /// Fetch-conservation ledger counts (every core-emitted fetch returned
    /// or absorbed exactly once; verified at end of run).
    pub audit: AuditSummary,
    /// Sampled per-fetch lifecycle trace with per-level latency
    /// decomposition (empty unless `GpuConfig::trace_sample` is set; see
    /// [`gmh_types::trace`]). Deliberately *not* part of the JSON report —
    /// export it with the Chrome-trace / latency-table exporters in
    /// `gmh-exp`.
    pub trace: TraceData,
}

impl SimStats {
    /// Speedup of this run over a `baseline` run of the same workload
    /// (ratio of IPCs).
    ///
    /// # Panics
    ///
    /// Panics if the baseline IPC is zero.
    pub fn speedup_over(&self, baseline: &SimStats) -> f64 {
        assert!(baseline.ipc > 0.0, "baseline IPC must be non-zero");
        self.ipc / baseline.ipc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_ipc_ratio() {
        let a = SimStats {
            ipc: 2.0,
            ..SimStats::default()
        };
        let b = SimStats {
            ipc: 0.5,
            ..SimStats::default()
        };
        assert!((a.speedup_over(&b) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_baseline_panics() {
        let a = SimStats {
            ipc: 1.0,
            ..SimStats::default()
        };
        let _ = a.speedup_over(&SimStats::default());
    }
}
