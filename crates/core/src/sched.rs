//! Per-shard event-scheduler state for the event-driven run loop.
//!
//! Each [`crate::par::Shard`] carries one [`ShardSched`]: awake flags, a
//! shard-local [`TimeQ`] of scheduled wakes, and the lazy own-domain cycle
//! ledger (`done`) that lets a sleeping component absorb its skipped ticks
//! in one bulk `skip_cycles`/`skip_idle` call at wake time. The queue is
//! shard-local so workers can park and schedule their own components
//! between barriers without touching any cross-shard state — the property
//! that keeps the sharded event core bit-identical to the serial sweep.
//!
//! ## Awake-flag lifecycle
//!
//! Components are born awake (for the classes the memory model exercises)
//! and stay awake while their probe answers `Busy` — a busy component
//! never touches the queue, so the saturated path pays no heap traffic.
//! A quiet probe parks the component: flag down, and a bounded wake
//! scheduled at `(bound - 1) * period` (the wall-clock instant its own
//! domain fires tick `bound`), or no entry at all when the component can
//! only be woken by external input. Wakes are consumed either by the
//! coordinator's per-instant `pop_ready` drain or by a cross-component
//! activation, and both flush the owed quiet cycles *before* the first
//! mutation so every component skip hook observes the frozen quiet state
//! its own `debug_assert` demands.

use gmh_simt::IssueStallKind;
use gmh_types::{Picos, TimeQ};

/// Component classes a shard schedules, in coordinator probe order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Class {
    /// SIMT cores (core clock domain).
    Core,
    /// L2 banks (interconnect clock domain).
    Bank,
    /// DRAM channels (DRAM command-clock domain).
    Chan,
    /// Crossbar networks (interconnect clock domain).
    Net,
}

/// Event-scheduler state for one shard's components.
///
/// Local component ids are laid out `[cores | banks | channels | nets]`,
/// each class contiguous in ascending global component order.
pub(crate) struct ShardSched {
    /// `false` pins the naive oracle: every component stays awake, no
    /// probe runs, no wake is ever scheduled.
    pub enabled: bool,
    /// Shard-local wake queue keyed by `(wake_ps, local id)`.
    pub q: TimeQ,
    /// Awake flag per local component id.
    pub awake: Vec<bool>,
    /// Own-domain ticks this component has actually absorbed (cycled or
    /// skip-replayed). `cycles() - done` is the flush debt at wake time.
    pub done: Vec<u64>,
    /// Issue-stall class captured when each core went quiet; replayed by
    /// `skip_idle` for every flushed cycle of the window.
    pub core_stall: Vec<Option<IssueStallKind>>,
    n_cores: usize,
    n_banks: usize,
    n_chans: usize,
    /// Awake components per class, kept in lock-step with `awake` so the
    /// coordinator's all-asleep check is O(shards), not O(components).
    pub awake_cores: usize,
    pub awake_banks: usize,
    pub awake_chans: usize,
    pub awake_nets: usize,
    core_ps: Picos,
    icnt_ps: Picos,
    dram_ps: Picos,
}

impl ShardSched {
    /// Builds the scheduler for a shard owning the given component counts.
    /// `cores_on`/`banks_on`/`chans_on`/`nets_on` say which classes the
    /// memory model actually ticks — classes it never ticks are born
    /// parked and are never woken or flushed, exactly like the naive loop
    /// never touching them.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        enabled: bool,
        counts: [usize; 4],
        participates: [bool; 4],
        periods: [Picos; 3],
    ) -> Self {
        let [n_cores, n_banks, n_chans, n_nets] = counts;
        let total = n_cores + n_banks + n_chans + n_nets;
        let mut awake = vec![false; total];
        let mut live = [0usize; 4];
        for (class, (&n, &on)) in counts.iter().zip(participates.iter()).enumerate() {
            if on {
                live[class] = n;
            }
        }
        let offsets = [0, n_cores, n_cores + n_banks, n_cores + n_banks + n_chans];
        for (class, &n) in live.iter().enumerate() {
            for slot in 0..n {
                awake[offsets[class] + slot] = true;
            }
        }
        ShardSched {
            enabled,
            q: TimeQ::new(total),
            awake,
            done: vec![0; total],
            core_stall: vec![None; n_cores],
            n_cores,
            n_banks,
            n_chans,
            awake_cores: live[0],
            awake_banks: live[1],
            awake_chans: live[2],
            awake_nets: live[3],
            core_ps: periods[0],
            icnt_ps: periods[1],
            dram_ps: periods[2],
        }
    }

    /// A hollow scheduler for [`crate::par::Shard::empty`] placeholders.
    pub fn hollow() -> Self {
        ShardSched::new(false, [0; 4], [false; 4], [1, 1, 1])
    }

    /// Local id of core `slot` (cores lead the layout, so it is `slot`).
    #[inline]
    pub fn core_id(&self, slot: usize) -> usize {
        slot
    }

    /// Local id of bank `slot`.
    #[inline]
    pub fn bank_id(&self, slot: usize) -> usize {
        self.n_cores + slot
    }

    /// Local id of channel `slot`.
    #[inline]
    pub fn chan_id(&self, slot: usize) -> usize {
        self.n_cores + self.n_banks + slot
    }

    /// Local id of network `slot`.
    #[inline]
    pub fn net_id(&self, slot: usize) -> usize {
        self.n_cores + self.n_banks + self.n_chans + slot
    }

    /// Maps a local id back to `(class, slot)`.
    pub fn locate(&self, id: usize) -> (Class, usize) {
        if id < self.n_cores {
            (Class::Core, id)
        } else if id < self.n_cores + self.n_banks {
            (Class::Bank, id - self.n_cores)
        } else if id < self.n_cores + self.n_banks + self.n_chans {
            (Class::Chan, id - self.n_cores - self.n_banks)
        } else {
            (Class::Net, id - self.n_cores - self.n_banks - self.n_chans)
        }
    }

    /// The clock period of `class`'s domain in picoseconds.
    #[inline]
    fn period(&self, class: Class) -> Picos {
        match class {
            Class::Core => self.core_ps,
            Class::Bank | Class::Net => self.icnt_ps,
            Class::Chan => self.dram_ps,
        }
    }

    fn count_mut(&mut self, class: Class) -> &mut usize {
        match class {
            Class::Core => &mut self.awake_cores,
            Class::Bank => &mut self.awake_banks,
            Class::Chan => &mut self.awake_chans,
            Class::Net => &mut self.awake_nets,
        }
    }

    /// Parks component `id` after a quiet probe: flag down, and with a
    /// bounded probe a wake scheduled at the instant its own domain fires
    /// tick `bound` (1-based; tick N fires at `(N-1) * period`). `None`
    /// parks it for external input only.
    pub fn sleep(&mut self, id: usize, class: Class, bound: Option<u64>) {
        debug_assert!(self.awake[id], "sleeping a parked component");
        debug_assert!(!self.q.contains(id), "awake component still queued");
        self.awake[id] = false;
        *self.count_mut(class) -= 1;
        if let Some(b) = bound {
            self.q.schedule(id, (b - 1) * self.period(class));
        }
    }

    /// Raises the awake flag for `id` (cancelling any scheduled wake) and
    /// returns `true` if it was asleep. The *caller* flushes the owed quiet
    /// cycles before any mutation — see the shard-level wake helpers.
    pub fn wake(&mut self, id: usize, class: Class) -> bool {
        if self.awake[id] {
            return false;
        }
        self.q.cancel(id);
        self.awake[id] = true;
        *self.count_mut(class) += 1;
        true
    }

    /// Total awake components across all classes.
    #[cfg(test)]
    pub fn awake_total(&self) -> usize {
        self.awake_cores + self.awake_banks + self.awake_chans + self.awake_nets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_maps_ids_both_ways() {
        let s = ShardSched::new(true, [3, 2, 2, 1], [true; 4], [714, 1428, 1082]);
        assert_eq!(s.core_id(2), 2);
        assert_eq!(s.bank_id(0), 3);
        assert_eq!(s.chan_id(1), 6);
        assert_eq!(s.net_id(0), 7);
        assert_eq!(s.locate(2), (Class::Core, 2));
        assert_eq!(s.locate(3), (Class::Bank, 0));
        assert_eq!(s.locate(6), (Class::Chan, 1));
        assert_eq!(s.locate(7), (Class::Net, 0));
        assert_eq!(s.awake_total(), 8);
    }

    #[test]
    fn non_participating_classes_are_born_parked() {
        // An ideal-memory model: banks, channels and nets never tick.
        let s = ShardSched::new(
            true,
            [2, 2, 1, 2],
            [true, false, false, false],
            [714, 1428, 1082],
        );
        assert_eq!(s.awake_total(), 2);
        assert!(s.awake[0] && s.awake[1]);
        assert!(!s.awake[s.bank_id(0)]);
        assert!(!s.awake[s.chan_id(0)]);
        assert!(!s.awake[s.net_id(1)]);
    }

    #[test]
    fn sleep_schedules_bounded_wakes_and_wake_cancels_them() {
        let mut s = ShardSched::new(true, [1, 1, 0, 0], [true; 4], [10, 20, 30]);
        // Core 0 quiet until its own tick 5 -> wake at (5-1)*10 = 40 ps.
        s.sleep(0, Class::Core, Some(5));
        assert_eq!(s.q.peek(), Some((40, 0)));
        assert_eq!(s.awake_cores, 0);
        // Bank quiet for external input only: no queue entry.
        s.sleep(s.bank_id(0), Class::Bank, None);
        assert_eq!(s.q.len(), 1);
        assert_eq!(s.awake_total(), 0);
        // External activation wakes the core early and cancels its entry.
        assert!(s.wake(0, Class::Core));
        assert!(s.q.is_empty());
        assert_eq!(s.awake_cores, 1);
        // Waking an already-awake component is a no-op.
        assert!(!s.wake(0, Class::Core));
        assert_eq!(s.awake_cores, 1);
    }
}
