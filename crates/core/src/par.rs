//! Deterministic parallel scheduler: shards and the ownership-passing
//! worker pool.
//!
//! The machine is partitioned into [`Shard`]s — contiguous slices of the
//! SIMT cores, L2 banks, DRAM channels, plus the two crossbar networks —
//! and each run-loop phase that is embarrassingly parallel across
//! components (core cycles, bank pipelines, channel cycles, network
//! switching) becomes a [`Region`] executed on every shard. Everything
//! else (injection, ejection, miss hand-off, fills) stays on the
//! coordinator thread, which owns all shards between regions.
//!
//! ## Why ownership passing
//!
//! Determinism is enforced structurally, not by locking discipline: a
//! shard is *moved* to a worker over a channel, mutated there with
//! exclusive ownership, and moved back before the coordinator touches any
//! cross-shard state. There is no shared mutable state, no lock, and no
//! unsafe code — the borrow checker proves the absence of data races, and
//! the coordinator's fixed shard-order merge ([`gmh_types::trace::TraceSink::absorb`],
//! plus plain field access for everything else) makes the result
//! byte-identical to the serial sweep for any worker count. A region's
//! effects are confined to the shard's own components, so the execution
//! interleaving across workers is unobservable.
//!
//! On a single hardware thread the pool degrades gracefully: blocking
//! `mpsc` receives yield to the OS scheduler instead of spinning, so an
//! oversubscribed host loses throughput but never correctness.

use crate::l2bank::L2Bank;
use crate::sched::{Class, ShardSched};
use gmh_dram::DramChannel;
use gmh_icnt::Network;
use gmh_simt::{CoreIdleProbe, SimtCore};
use gmh_types::prof::{HostPhase, LaneProf};
use gmh_types::trace::TraceSink;
use gmh_types::{EventBound, Picos, TickSet};
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Instant;

/// One tick domain: a contiguous slice of the machine that can advance a
/// [`Region`] without observing any other shard.
pub(crate) struct Shard {
    /// Stable shard index; also the merge position (shard sinks are
    /// absorbed in ascending `id` order).
    pub id: usize,
    /// SIMT cores owned by this shard (global ids are contiguous).
    pub cores: Vec<SimtCore>,
    /// L2 banks owned by this shard.
    pub banks: Vec<L2Bank>,
    /// DRAM channels owned by this shard.
    pub channels: Vec<DramChannel>,
    /// Crossbar networks owned by this shard (request and reply switch
    /// independently; the coordinator serializes all inject/eject).
    pub nets: Vec<Network>,
    /// Private trace sink, drained into the global sink at every merge
    /// point in shard order.
    pub trace: TraceSink,
    /// Shard-local event scheduler: awake flags, wake queue and the lazy
    /// skipped-cycle ledger for the components this shard owns.
    pub sched: ShardSched,
    /// Regions this shard actually executed (it owned ≥1 awake component
    /// of the region's class) — observational, for the shard-utilization
    /// tests.
    pub active_regions: u64,
}

/// One parallel phase of the run loop. Carries the scalar clock context a
/// worker needs, because workers see nothing but the shard itself — the
/// domain cycle count feeds the scheduler's `done` ledger and wake math.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Region {
    /// Switch the crossbar networks this shard owns.
    Net {
        /// Current interconnect-domain cycle count.
        cyc: u64,
    },
    /// Advance every L2 bank pipeline one interconnect cycle.
    Bank {
        /// Wall-clock picosecond of this tick.
        now_ps: Picos,
        /// Current interconnect-domain cycle count.
        cyc: u64,
    },
    /// Advance every SIMT core one core cycle.
    Core {
        /// Wall-clock picosecond of this tick.
        now_ps: Picos,
        /// Current core-domain cycle count.
        cyc: u64,
    },
    /// Advance every DRAM channel one DRAM cycle.
    Dram {
        /// Current DRAM-domain cycle count.
        cyc: u64,
    },
}

impl Shard {
    /// A hollow placeholder left behind while the real shard visits a
    /// worker. Allocation-free (`Vec::new` and the disabled sink hold no
    /// heap), so swapping it in costs nothing per region.
    pub fn empty(id: usize) -> Self {
        Shard {
            id,
            cores: Vec::new(),
            banks: Vec::new(),
            channels: Vec::new(),
            nets: Vec::new(),
            trace: TraceSink::disabled(),
            sched: ShardSched::hollow(),
            active_regions: 0,
        }
    }

    /// Whether dispatching `region` to this shard could do any work: the
    /// shard owns components of the class and (with the event scheduler
    /// on) at least one of them is awake. Skipping the dispatch otherwise
    /// is a pure scheduling choice — the gated region loop below would
    /// visit nobody — with no effect on results.
    pub fn wants(&self, region: Region) -> bool {
        let (populated, awake) = match region {
            Region::Net { .. } => (!self.nets.is_empty(), self.sched.awake_nets),
            Region::Bank { .. } => (!self.banks.is_empty(), self.sched.awake_banks),
            Region::Core { .. } => (!self.cores.is_empty(), self.sched.awake_cores),
            Region::Dram { .. } => (!self.channels.is_empty(), self.sched.awake_chans),
        };
        populated && (!self.sched.enabled || awake > 0)
    }

    /// Executes one region over this shard's *awake* components, in
    /// ascending component order — the same order the serial sweep visits
    /// them (sleeping components are provably inert this tick, so skipping
    /// them is exact). After its cycle each component is re-probed: a
    /// quiet probe parks it in the shard-local scheduler, a busy one keeps
    /// it hot with zero queue traffic.
    pub fn run_region(&mut self, region: Region) {
        if !self.wants(region) {
            return;
        }
        self.active_regions += 1;
        let Shard {
            cores,
            banks,
            channels,
            nets,
            trace,
            sched,
            ..
        } = self;
        match region {
            Region::Net { cyc } => {
                for (i, n) in nets.iter_mut().enumerate() {
                    let id = sched.net_id(i);
                    if sched.enabled && !sched.awake[id] {
                        continue;
                    }
                    let moved = n.cycle();
                    if !sched.enabled {
                        continue;
                    }
                    sched.done[id] = cyc;
                    // A moving switch is trivially busy: probe only on a
                    // do-nothing cycle, keeping the saturated path free of
                    // per-cycle head scans. A parked ejection backlog is
                    // re-offered by the coordinator every tick; the
                    // network's own bound does not cover it, so a
                    // backlogged switch stays awake.
                    if moved || n.ejection_backlog() > 0 {
                        continue;
                    }
                    match n.next_event_bound() {
                        EventBound::Busy => {}
                        EventBound::QuietUntil { bound } => sched.sleep(id, Class::Net, bound),
                    }
                }
            }
            Region::Bank { now_ps, cyc } => {
                for (i, b) in banks.iter_mut().enumerate() {
                    let id = sched.bank_id(i);
                    if sched.enabled && !sched.awake[id] {
                        continue;
                    }
                    b.cycle_traced(now_ps, trace);
                    if !sched.enabled {
                        continue;
                    }
                    sched.done[id] = cyc;
                    // The bank probe is three O(1) queue checks — probing
                    // every cycle costs no more than an activity check.
                    match b.next_event_bound() {
                        EventBound::Busy => {}
                        EventBound::QuietUntil { bound } => sched.sleep(id, Class::Bank, bound),
                    }
                }
            }
            Region::Core { now_ps, cyc } => {
                for (i, c) in cores.iter_mut().enumerate() {
                    let id = sched.core_id(i);
                    if sched.enabled && !sched.awake[id] {
                        continue;
                    }
                    let active = c.cycle_traced(now_ps, trace);
                    if !sched.enabled {
                        continue;
                    }
                    sched.done[id] = cyc;
                    // An active cycle (pipeline inputs to chew on, or an
                    // instruction issued) implies the probe would answer
                    // `Busy` or the core is one cycle from quiescing —
                    // skip the O(warps) probe scan and re-check next tick.
                    if active {
                        continue;
                    }
                    match c.next_event_bound() {
                        CoreIdleProbe::Busy => {}
                        CoreIdleProbe::Quiet { bound, stall } => {
                            sched.core_stall[i] = stall;
                            sched.sleep(id, Class::Core, bound);
                        }
                    }
                }
            }
            Region::Dram { cyc } => {
                for (i, ch) in channels.iter_mut().enumerate() {
                    let id = sched.chan_id(i);
                    if sched.enabled && !sched.awake[id] {
                        continue;
                    }
                    ch.cycle(cyc);
                    if !sched.enabled {
                        continue;
                    }
                    sched.done[id] = cyc;
                    // The channel probe early-outs `Busy` on the first
                    // visible queue entry, so per-cycle probing is cheap
                    // on the saturated path.
                    match ch.next_event_bound(cyc) {
                        EventBound::Busy => {}
                        EventBound::QuietUntil { bound } => sched.sleep(id, Class::Chan, bound),
                    }
                }
            }
        }
    }

    // ---- wake helpers --------------------------------------------------------
    //
    // Every helper follows the flush-before-mutate discipline: the owed
    // quiet cycles are replayed through the component's bulk skip hook
    // while its state is still the frozen quiet state the hook's
    // debug_assert demands, and only then does the caller mutate it.
    // `target` is the own-domain tick count the component must have
    // absorbed *before* the caller's mutation (callers subtract one when
    // the component's own region still runs later this instant).

    /// Wakes core `slot`, flushing its owed quiet cycles (with the stall
    /// class captured when it went to sleep) up to core tick `target`.
    pub fn wake_core(&mut self, slot: usize, target: u64) {
        if !self.sched.enabled {
            return;
        }
        let id = self.sched.core_id(slot);
        if !self.sched.wake(id, Class::Core) {
            return;
        }
        let owed = target - self.sched.done[id];
        if owed > 0 {
            self.cores[slot].skip_idle(owed, self.sched.core_stall[slot]);
        }
        self.sched.done[id] = target;
    }

    /// Wakes bank `slot`, flushing up to interconnect tick `target`.
    pub fn wake_bank(&mut self, slot: usize, target: u64) {
        if !self.sched.enabled {
            return;
        }
        let id = self.sched.bank_id(slot);
        if !self.sched.wake(id, Class::Bank) {
            return;
        }
        let owed = target - self.sched.done[id];
        if owed > 0 {
            self.banks[slot].skip_cycles(owed);
        }
        self.sched.done[id] = target;
    }

    /// Wakes channel `slot`, flushing up to DRAM tick `target`. The skip
    /// hook receives the channel's *pre-skip* cycle count — the `now` its
    /// most recent real cycle saw — so its quiet assertion evaluates the
    /// frozen state.
    pub fn wake_channel(&mut self, slot: usize, target: u64) {
        if !self.sched.enabled {
            return;
        }
        let id = self.sched.chan_id(slot);
        if !self.sched.wake(id, Class::Chan) {
            return;
        }
        let done = self.sched.done[id];
        let owed = target - done;
        if owed > 0 {
            self.channels[slot].skip_cycles(owed, done);
        }
        self.sched.done[id] = target;
    }

    /// Wakes network `slot`, flushing up to interconnect tick `target`.
    pub fn wake_net(&mut self, slot: usize, target: u64) {
        if !self.sched.enabled {
            return;
        }
        let id = self.sched.net_id(slot);
        if !self.sched.wake(id, Class::Net) {
            return;
        }
        let owed = target - self.sched.done[id];
        if owed > 0 {
            self.nets[slot].skip_cycles(owed);
        }
        self.sched.done[id] = target;
    }

    /// Drains this shard's due wakes at one clock instant: every queued
    /// component whose wake time has arrived is flushed to `cycles - 1` of
    /// its own domain (its domain provably fires at its wake instant, so
    /// the region running later this instant executes the final tick) and
    /// marked awake. Returns the number of components woken.
    pub fn drain_wakes(
        &mut self,
        now_ps: Picos,
        fired: TickSet,
        core_cyc: u64,
        icnt_cyc: u64,
        dram_cyc: u64,
    ) -> u64 {
        if !self.sched.enabled {
            return 0;
        }
        let mut woke = 0;
        while let Some(id) = self.sched.q.pop_ready(now_ps) {
            let (class, slot) = self.sched.locate(id);
            debug_assert!(
                match class {
                    Class::Core => fired.core,
                    Class::Bank | Class::Net => fired.icnt,
                    Class::Chan => fired.dram,
                },
                "a wake instant must be a tick instant of its own domain"
            );
            match class {
                Class::Core => self.wake_core(slot, core_cyc - 1),
                Class::Bank => self.wake_bank(slot, icnt_cyc - 1),
                Class::Chan => self.wake_channel(slot, dram_cyc - 1),
                Class::Net => self.wake_net(slot, icnt_cyc - 1),
            }
            woke += 1;
        }
        woke
    }

    /// End-of-run flush: replays every sleeping component's owed quiet
    /// cycles up to the final domain tick counts, so the collected stats
    /// (stall attribution, occupancy samples, blocked-cycle counts) are
    /// exactly what the naive loop would have accumulated. Classes the
    /// memory model never ticks are left untouched, like the naive loop
    /// leaves them.
    pub fn flush_end(
        &mut self,
        core_end: u64,
        icnt_end: u64,
        dram_end: u64,
        hierarchy: bool,
        full_dram: bool,
    ) {
        if !self.sched.enabled {
            return;
        }
        for slot in 0..self.cores.len() {
            self.wake_core(slot, core_end);
        }
        if hierarchy {
            for slot in 0..self.banks.len() {
                self.wake_bank(slot, icnt_end);
            }
            for slot in 0..self.nets.len() {
                self.wake_net(slot, icnt_end);
            }
        }
        if full_dram {
            for slot in 0..self.channels.len() {
                self.wake_channel(slot, dram_end);
            }
        }
    }
}

/// The worker pool: one thread per non-coordinator shard, fed over
/// per-worker channels, returning shards over one shared channel.
///
/// The channels are the synchronization barrier: the coordinator blocks in
/// [`ParPool::collect`] until every dispatched shard has come home, so no
/// serial step ever observes a shard mid-region.
pub(crate) struct ParPool {
    to_workers: Vec<mpsc::Sender<(Region, Shard)>>,
    from_workers: mpsc::Receiver<Shard>,
    handles: Vec<JoinHandle<LaneProf>>,
}

impl ParPool {
    /// Spawns `n_workers` threads, each waiting for `(region, shard)`
    /// work items.
    ///
    /// With `prof_epoch` set, each worker owns an enabled [`LaneProf`]
    /// (lane `w + 1`; lane 0 is the coordinator) timing its three states —
    /// recv wait, region execution, return send — against the shared
    /// epoch. The lane is thread-private plain data (no atomics, no
    /// shared state: shard isolation is preserved) and comes home via the
    /// thread's join handle at [`ParPool::shutdown`]. Profiling is purely
    /// observational: the worker executes the identical region sequence
    /// either way.
    pub fn spawn(n_workers: usize, prof_epoch: Option<Instant>) -> Self {
        let (ret_tx, from_workers) = mpsc::channel();
        let mut to_workers = Vec::with_capacity(n_workers);
        let mut handles = Vec::with_capacity(n_workers);
        for w in 0..n_workers {
            let (tx, rx) = mpsc::channel::<(Region, Shard)>();
            let ret = ret_tx.clone();
            handles.push(std::thread::spawn(move || {
                let mut lane = match prof_epoch {
                    Some(epoch) => LaneProf::new(w + 1, epoch),
                    None => LaneProf::disabled(w + 1),
                };
                loop {
                    let t0 = lane.begin();
                    let Ok((region, mut shard)) = rx.recv() else {
                        // Channel closed: don't close the final recv-wait
                        // span — shutdown latency is not barrier wait.
                        break;
                    };
                    let t1 = t0.map(|t| lane.end_chain(HostPhase::RecvWait, t));
                    shard.run_region(region);
                    let t2 = t1.map(|t| lane.end_chain(HostPhase::RegionExec, t));
                    if ret.send(shard).is_err() {
                        break; // coordinator gone: shut down
                    }
                    if let Some(t) = t2 {
                        lane.end_chain(HostPhase::SendReturn, t);
                    }
                }
                lane
            }));
            to_workers.push(tx);
        }
        ParPool {
            to_workers,
            from_workers,
            handles,
        }
    }

    /// Hands `shard` to `worker` for one region.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread died (itself only possible via a panic
    /// in model code — fail fast rather than deadlock).
    pub fn dispatch(&self, worker: usize, region: Region, shard: Shard) {
        // INVARIANT: workers only exit when their sender is dropped (in
        // `shutdown`) or after a panic in model code — fail fast then.
        self.to_workers[worker]
            .send((region, shard))
            .expect("worker thread alive");
    }

    /// Receives one finished shard (any worker, completion order).
    ///
    /// # Panics
    ///
    /// Panics if every worker died before returning a dispatched shard.
    pub fn collect(&self) -> Shard {
        // INVARIANT: called once per dispatched shard, and a live worker
        // always returns its shard; a dead worker means model code
        // panicked — fail fast rather than deadlock.
        self.from_workers.recv().expect("worker thread alive")
    }

    /// Shuts the pool down: closing the work channels ends each worker's
    /// receive loop, then the threads are joined and their profiling
    /// lanes returned (disabled lanes when the pool was spawned without
    /// an epoch — callers that don't profile just drop them).
    pub fn shutdown(self) -> Vec<LaneProf> {
        drop(self.to_workers);
        let mut lanes = Vec::with_capacity(self.handles.len());
        for h in self.handles {
            if let Ok(lane) = h.join() {
                lanes.push(lane);
            }
        }
        lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bare_shard(id: usize) -> Shard {
        Shard::empty(id)
    }

    #[test]
    fn empty_shard_wants_nothing() {
        let s = bare_shard(3);
        assert!(!s.wants(Region::Net { cyc: 0 }));
        assert!(!s.wants(Region::Bank { now_ps: 0, cyc: 0 }));
        assert!(!s.wants(Region::Core { now_ps: 0, cyc: 0 }));
        assert!(!s.wants(Region::Dram { cyc: 0 }));
        assert_eq!(s.id, 3);
    }

    #[test]
    fn run_region_on_empty_shard_counts_nothing() {
        let mut s = bare_shard(0);
        s.run_region(Region::Core { now_ps: 10, cyc: 1 });
        s.run_region(Region::Dram { cyc: 5 });
        assert_eq!(s.active_regions, 0);
    }

    #[test]
    fn pool_round_trips_shards() {
        let pool = ParPool::spawn(2, None);
        pool.dispatch(0, Region::Net { cyc: 1 }, bare_shard(1));
        pool.dispatch(1, Region::Net { cyc: 1 }, bare_shard(2));
        let a = pool.collect();
        let b = pool.collect();
        let mut ids = [a.id, b.id];
        ids.sort_unstable();
        assert_eq!(ids, [1, 2]);
        let lanes = pool.shutdown();
        assert_eq!(lanes.len(), 2);
        assert!(lanes.iter().all(|l| !l.is_enabled()));
    }

    #[test]
    fn profiled_pool_returns_worker_lanes_with_spans() {
        let pool = ParPool::spawn(2, Some(Instant::now()));
        for round in 0..3 {
            pool.dispatch(0, Region::Net { cyc: 1 }, bare_shard(1));
            pool.dispatch(1, Region::Net { cyc: 1 }, bare_shard(2));
            let _ = pool.collect();
            let _ = pool.collect();
            let _ = round;
        }
        let mut lanes: Vec<_> = pool
            .shutdown()
            .into_iter()
            .map(LaneProf::into_data)
            .collect();
        lanes.sort_by_key(|l| l.lane);
        assert_eq!([lanes[0].lane, lanes[1].lane], [1, 2]);
        for l in &lanes {
            assert_eq!(l.count(HostPhase::RegionExec), 3);
            assert_eq!(l.count(HostPhase::RecvWait), 3);
            assert_eq!(l.count(HostPhase::SendReturn), 3);
            assert_eq!(l.dropped, 0);
        }
    }
}
