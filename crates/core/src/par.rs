//! Deterministic parallel scheduler: shards and the ownership-passing
//! worker pool.
//!
//! The machine is partitioned into [`Shard`]s — contiguous slices of the
//! SIMT cores, L2 banks, DRAM channels, plus the two crossbar networks —
//! and each run-loop phase that is embarrassingly parallel across
//! components (core cycles, bank pipelines, channel cycles, network
//! switching) becomes a [`Region`] executed on every shard. Everything
//! else (injection, ejection, miss hand-off, fills) stays on the
//! coordinator thread, which owns all shards between regions.
//!
//! ## Why ownership passing
//!
//! Determinism is enforced structurally, not by locking discipline: a
//! shard is *moved* to a worker over a channel, mutated there with
//! exclusive ownership, and moved back before the coordinator touches any
//! cross-shard state. There is no shared mutable state, no lock, and no
//! unsafe code — the borrow checker proves the absence of data races, and
//! the coordinator's fixed shard-order merge ([`gmh_types::trace::TraceSink::absorb`],
//! plus plain field access for everything else) makes the result
//! byte-identical to the serial sweep for any worker count. A region's
//! effects are confined to the shard's own components, so the execution
//! interleaving across workers is unobservable.
//!
//! On a single hardware thread the pool degrades gracefully: blocking
//! `mpsc` receives yield to the OS scheduler instead of spinning, so an
//! oversubscribed host loses throughput but never correctness.

use crate::l2bank::L2Bank;
use gmh_dram::DramChannel;
use gmh_icnt::Network;
use gmh_simt::SimtCore;
use gmh_types::prof::{HostPhase, LaneProf};
use gmh_types::trace::TraceSink;
use gmh_types::Picos;
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Instant;

/// One tick domain: a contiguous slice of the machine that can advance a
/// [`Region`] without observing any other shard.
pub(crate) struct Shard {
    /// Stable shard index; also the merge position (shard sinks are
    /// absorbed in ascending `id` order).
    pub id: usize,
    /// SIMT cores owned by this shard (global ids are contiguous).
    pub cores: Vec<SimtCore>,
    /// L2 banks owned by this shard.
    pub banks: Vec<L2Bank>,
    /// DRAM channels owned by this shard.
    pub channels: Vec<DramChannel>,
    /// Crossbar networks owned by this shard (request and reply switch
    /// independently; the coordinator serializes all inject/eject).
    pub nets: Vec<Network>,
    /// Private trace sink, drained into the global sink at every merge
    /// point in shard order.
    pub trace: TraceSink,
    /// Regions this shard actually executed (it owned ≥1 component of the
    /// region's class) — observational, for the shard-utilization tests.
    pub active_regions: u64,
}

/// One parallel phase of the run loop. Carries the scalar clock context a
/// worker needs, because workers see nothing but the shard itself.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Region {
    /// Switch the crossbar networks this shard owns.
    Net,
    /// Advance every L2 bank pipeline one interconnect cycle.
    Bank {
        /// Wall-clock picosecond of this tick.
        now_ps: Picos,
    },
    /// Advance every SIMT core one core cycle.
    Core {
        /// Wall-clock picosecond of this tick.
        now_ps: Picos,
    },
    /// Advance every DRAM channel one DRAM cycle.
    Dram {
        /// Current DRAM-domain cycle count.
        cyc: u64,
    },
}

impl Shard {
    /// A hollow placeholder left behind while the real shard visits a
    /// worker. Allocation-free (`Vec::new` and the disabled sink hold no
    /// heap), so swapping it in costs nothing per region.
    pub fn empty(id: usize) -> Self {
        Shard {
            id,
            cores: Vec::new(),
            banks: Vec::new(),
            channels: Vec::new(),
            nets: Vec::new(),
            trace: TraceSink::disabled(),
            active_regions: 0,
        }
    }

    /// Whether the shard owns any component of `region`'s class. Empty
    /// shards skip the dispatch entirely — the region provably cannot
    /// touch them, so skipping is a pure scheduling choice with no effect
    /// on results.
    pub fn wants(&self, region: Region) -> bool {
        match region {
            Region::Net => !self.nets.is_empty(),
            Region::Bank { .. } => !self.banks.is_empty(),
            Region::Core { .. } => !self.cores.is_empty(),
            Region::Dram { .. } => !self.channels.is_empty(),
        }
    }

    /// Executes one region over this shard's components, in ascending
    /// component order — the same order the serial sweep visits them.
    pub fn run_region(&mut self, region: Region) {
        if !self.wants(region) {
            return;
        }
        self.active_regions += 1;
        match region {
            Region::Net => {
                for n in &mut self.nets {
                    n.cycle();
                }
            }
            Region::Bank { now_ps } => {
                let Shard { banks, trace, .. } = self;
                for b in banks {
                    b.cycle_traced(now_ps, trace);
                }
            }
            Region::Core { now_ps } => {
                let Shard { cores, trace, .. } = self;
                for c in cores {
                    c.cycle_traced(now_ps, trace);
                }
            }
            Region::Dram { cyc } => {
                for ch in &mut self.channels {
                    ch.cycle(cyc);
                }
            }
        }
    }
}

/// The worker pool: one thread per non-coordinator shard, fed over
/// per-worker channels, returning shards over one shared channel.
///
/// The channels are the synchronization barrier: the coordinator blocks in
/// [`ParPool::collect`] until every dispatched shard has come home, so no
/// serial step ever observes a shard mid-region.
pub(crate) struct ParPool {
    to_workers: Vec<mpsc::Sender<(Region, Shard)>>,
    from_workers: mpsc::Receiver<Shard>,
    handles: Vec<JoinHandle<LaneProf>>,
}

impl ParPool {
    /// Spawns `n_workers` threads, each waiting for `(region, shard)`
    /// work items.
    ///
    /// With `prof_epoch` set, each worker owns an enabled [`LaneProf`]
    /// (lane `w + 1`; lane 0 is the coordinator) timing its three states —
    /// recv wait, region execution, return send — against the shared
    /// epoch. The lane is thread-private plain data (no atomics, no
    /// shared state: shard isolation is preserved) and comes home via the
    /// thread's join handle at [`ParPool::shutdown`]. Profiling is purely
    /// observational: the worker executes the identical region sequence
    /// either way.
    pub fn spawn(n_workers: usize, prof_epoch: Option<Instant>) -> Self {
        let (ret_tx, from_workers) = mpsc::channel();
        let mut to_workers = Vec::with_capacity(n_workers);
        let mut handles = Vec::with_capacity(n_workers);
        for w in 0..n_workers {
            let (tx, rx) = mpsc::channel::<(Region, Shard)>();
            let ret = ret_tx.clone();
            handles.push(std::thread::spawn(move || {
                let mut lane = match prof_epoch {
                    Some(epoch) => LaneProf::new(w + 1, epoch),
                    None => LaneProf::disabled(w + 1),
                };
                loop {
                    let t0 = lane.begin();
                    let Ok((region, mut shard)) = rx.recv() else {
                        // Channel closed: don't close the final recv-wait
                        // span — shutdown latency is not barrier wait.
                        break;
                    };
                    let t1 = t0.map(|t| lane.end_chain(HostPhase::RecvWait, t));
                    shard.run_region(region);
                    let t2 = t1.map(|t| lane.end_chain(HostPhase::RegionExec, t));
                    if ret.send(shard).is_err() {
                        break; // coordinator gone: shut down
                    }
                    if let Some(t) = t2 {
                        lane.end_chain(HostPhase::SendReturn, t);
                    }
                }
                lane
            }));
            to_workers.push(tx);
        }
        ParPool {
            to_workers,
            from_workers,
            handles,
        }
    }

    /// Hands `shard` to `worker` for one region.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread died (itself only possible via a panic
    /// in model code — fail fast rather than deadlock).
    pub fn dispatch(&self, worker: usize, region: Region, shard: Shard) {
        // INVARIANT: workers only exit when their sender is dropped (in
        // `shutdown`) or after a panic in model code — fail fast then.
        self.to_workers[worker]
            .send((region, shard))
            .expect("worker thread alive");
    }

    /// Receives one finished shard (any worker, completion order).
    ///
    /// # Panics
    ///
    /// Panics if every worker died before returning a dispatched shard.
    pub fn collect(&self) -> Shard {
        // INVARIANT: called once per dispatched shard, and a live worker
        // always returns its shard; a dead worker means model code
        // panicked — fail fast rather than deadlock.
        self.from_workers.recv().expect("worker thread alive")
    }

    /// Shuts the pool down: closing the work channels ends each worker's
    /// receive loop, then the threads are joined and their profiling
    /// lanes returned (disabled lanes when the pool was spawned without
    /// an epoch — callers that don't profile just drop them).
    pub fn shutdown(self) -> Vec<LaneProf> {
        drop(self.to_workers);
        let mut lanes = Vec::with_capacity(self.handles.len());
        for h in self.handles {
            if let Ok(lane) = h.join() {
                lanes.push(lane);
            }
        }
        lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bare_shard(id: usize) -> Shard {
        Shard::empty(id)
    }

    #[test]
    fn empty_shard_wants_nothing() {
        let s = bare_shard(3);
        assert!(!s.wants(Region::Net));
        assert!(!s.wants(Region::Bank { now_ps: 0 }));
        assert!(!s.wants(Region::Core { now_ps: 0 }));
        assert!(!s.wants(Region::Dram { cyc: 0 }));
        assert_eq!(s.id, 3);
    }

    #[test]
    fn run_region_on_empty_shard_counts_nothing() {
        let mut s = bare_shard(0);
        s.run_region(Region::Core { now_ps: 10 });
        s.run_region(Region::Dram { cyc: 5 });
        assert_eq!(s.active_regions, 0);
    }

    #[test]
    fn pool_round_trips_shards() {
        let pool = ParPool::spawn(2, None);
        pool.dispatch(0, Region::Net, bare_shard(1));
        pool.dispatch(1, Region::Net, bare_shard(2));
        let a = pool.collect();
        let b = pool.collect();
        let mut ids = [a.id, b.id];
        ids.sort_unstable();
        assert_eq!(ids, [1, 2]);
        let lanes = pool.shutdown();
        assert_eq!(lanes.len(), 2);
        assert!(lanes.iter().all(|l| !l.is_enabled()));
    }

    #[test]
    fn profiled_pool_returns_worker_lanes_with_spans() {
        let pool = ParPool::spawn(2, Some(Instant::now()));
        for round in 0..3 {
            pool.dispatch(0, Region::Net, bare_shard(1));
            pool.dispatch(1, Region::Net, bare_shard(2));
            let _ = pool.collect();
            let _ = pool.collect();
            let _ = round;
        }
        let mut lanes: Vec<_> = pool
            .shutdown()
            .into_iter()
            .map(LaneProf::into_data)
            .collect();
        lanes.sort_by_key(|l| l.lane);
        assert_eq!([lanes[0].lane, lanes[1].lane], [1, 2]);
        for l in &lanes {
            assert_eq!(l.count(HostPhase::RegionExec), 3);
            assert_eq!(l.count(HostPhase::RecvWait), 3);
            assert_eq!(l.count(HostPhase::SendReturn), 3);
            assert_eq!(l.dropped, 0);
        }
    }
}
