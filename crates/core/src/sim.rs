//! The full-GPU simulator: topology, clock domains and the run loop.

use crate::config::{GpuConfig, MemoryModel};
use crate::l2bank::L2Bank;
use crate::par::{ParPool, Region, Shard};
use crate::sched::ShardSched;
use crate::stats::SimStats;
use gmh_cache::TagArray;
use gmh_dram::DramChannel;
use gmh_icnt::{Crossbar, Network};
use gmh_simt::SimtCore;
use gmh_types::prof::{HostPhase, HostProfiler, HostReport};
use gmh_types::trace::{Level, TraceEventKind, TraceSink};
use gmh_types::{
    stable_hash_str, ClockDomains, DomainId, FetchAudit, MemFetch, Picos, SeriesId, Telemetry,
    TickSet,
};
use gmh_workloads::WorkloadSpec;
use std::collections::VecDeque;

/// Salt mixed into the trace sampler's seed so it never correlates with the
/// workload's own address/instruction RNG streams (the sim results must be
/// bit-identical with tracing on or off).
const TRACE_SEED_SALT: u64 = 0x5452_4143_455F_5631;

/// Upper bound on shards (and so worker threads). Far above the component
/// counts where sharding still helps; a backstop against absurd
/// `GMH_THREADS` values, not a tuning knob.
const MAX_SHARDS: usize = 16;

/// How the machine's components map onto shards: contiguous chunks of
/// `chunk` components per shard, so global component order equals
/// (shard order × within-shard order) — the property the deterministic
/// merge relies on.
#[derive(Clone, Copy, Debug)]
struct Layout {
    core_chunk: usize,
    bank_chunk: usize,
    chan_chunk: usize,
}

impl Layout {
    fn new(cfg: &GpuConfig, n_shards: usize) -> Self {
        Layout {
            core_chunk: cfg.n_cores.div_ceil(n_shards),
            bank_chunk: cfg.n_l2_banks.div_ceil(n_shards),
            chan_chunk: cfg.n_channels.div_ceil(n_shards),
        }
    }
}

/// Moves the next contiguous chunk of up to `k` components out of `v`.
fn take_chunk<T>(v: &mut Vec<T>, k: usize) -> Vec<T> {
    let k = k.min(v.len());
    v.drain(..k).collect()
}

/// Interned telemetry series handles, one per observed structure class
/// (values aggregate across instances: all cores, all banks, all channels).
#[derive(Clone, Copy)]
struct SeriesIds {
    l1_miss_queue: SeriesId,
    core_response_fifo: SeriesId,
    req_inject_flits: SeriesId,
    req_eject_backlog: SeriesId,
    req_flits_per_cycle: SeriesId,
    rep_inject_flits: SeriesId,
    rep_eject_backlog: SeriesId,
    rep_flits_per_cycle: SeriesId,
    l2_access_queue: SeriesId,
    l2_miss_queue: SeriesId,
    l2_response_queue: SeriesId,
    l2_stall_bp_icnt: SeriesId,
    l2_stall_port: SeriesId,
    l2_stall_cache: SeriesId,
    l2_stall_mshr: SeriesId,
    l2_stall_bp_dram: SeriesId,
    dram_sched_queue: SeriesId,
    dram_response_queue: SeriesId,
    ideal_in_flight: SeriesId,
}

impl SeriesIds {
    fn register(t: &mut Telemetry) -> Self {
        SeriesIds {
            l1_miss_queue: t.series("l1.miss_queue"),
            core_response_fifo: t.series("core.response_fifo"),
            req_inject_flits: t.series("icnt.req.inject_flits"),
            req_eject_backlog: t.series("icnt.req.eject_backlog"),
            req_flits_per_cycle: t.series("icnt.req.flits_per_cycle"),
            rep_inject_flits: t.series("icnt.rep.inject_flits"),
            rep_eject_backlog: t.series("icnt.rep.eject_backlog"),
            rep_flits_per_cycle: t.series("icnt.rep.flits_per_cycle"),
            l2_access_queue: t.series("l2.access_queue"),
            l2_miss_queue: t.series("l2.miss_queue"),
            l2_response_queue: t.series("l2.response_queue"),
            l2_stall_bp_icnt: t.series("l2.stall.bp_icnt"),
            l2_stall_port: t.series("l2.stall.port"),
            l2_stall_cache: t.series("l2.stall.cache"),
            l2_stall_mshr: t.series("l2.stall.mshr"),
            l2_stall_bp_dram: t.series("l2.stall.bp_dram"),
            dram_sched_queue: t.series("dram.sched_queue"),
            dram_response_queue: t.series("dram.response_queue"),
            ideal_in_flight: t.series("ideal.in_flight"),
        }
    }
}

/// Wall-clock time spent in each run-loop phase, collected only when
/// [`GpuConfig::profile_phases`] is set (purely observational).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseProfile {
    /// Core-domain ticks (issue/fetch/LSU/ideal delivery).
    pub core: std::time::Duration,
    /// Interconnect ticks (crossbar, L2 banks, DRAM hand-off).
    pub icnt: std::time::Duration,
    /// DRAM-domain ticks.
    pub dram: std::time::Duration,
    /// Telemetry sampling (one sample per interconnect tick).
    pub telemetry: std::time::Duration,
    /// Fast-forward probes and bulk skips.
    pub fast_forward: std::time::Duration,
}

/// Counters describing how often the fast-forward scheduler engaged and
/// why it refused (purely observational — never fed back into simulation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FastForwardStats {
    /// Successful jumps (≥1 tick skipped).
    pub jumps: u64,
    /// Core-domain ticks skipped across all jumps.
    pub skipped_core: u64,
    /// Interconnect-domain ticks skipped across all jumps.
    pub skipped_icnt: u64,
    /// DRAM-domain ticks skipped across all jumps.
    pub skipped_dram: u64,
    /// Probe refusals where a core was the first component found busy.
    pub busy_core: u64,
    /// Probe refusals where a network (or its ejection backlog) was busy.
    pub busy_icnt: u64,
    /// Probe refusals where an L2 bank was busy.
    pub busy_bank: u64,
    /// Probe refusals where a DRAM channel (or ideal queue) was busy.
    pub busy_dram: u64,
    /// Probes where everything was quiet but no tick fit under the bound.
    pub zero_window: u64,
}

impl FastForwardStats {
    /// Total ticks skipped across all domains.
    pub fn skipped_total(&self) -> u64 {
        self.skipped_core + self.skipped_icnt + self.skipped_dram
    }
}

/// The simulated GPU: cores, crossbar, L2 banks and DRAM channels advanced
/// under three clock domains.
///
/// Build one per `(config, workload)` pair and call [`GpuSim::run`].
pub struct GpuSim {
    cfg: GpuConfig,
    clocks: ClockDomains,
    /// The machine, partitioned into parallel tick domains. One shard =
    /// the serial machine; the coordinator owns every shard between
    /// regions, so all cross-shard steps are plain field access.
    shards: Vec<Shard>,
    layout: Layout,
    /// Ideal-memory in-flight queues; each holds `(ready_core_cycle,
    /// fetch)` in FIFO order (constant latency per queue).
    ideal_fast: VecDeque<(u64, MemFetch)>,
    ideal_slow: VecDeque<(u64, MemFetch)>,
    /// Ideal-DRAM pipe for [`MemoryModel::InfiniteDram`]: one `(ready_ps,
    /// fetch)` FIFO per L2 bank so a bank with a full response queue never
    /// blocks fills destined for other banks (infinite bandwidth).
    ideal_dram: Vec<VecDeque<(Picos, MemFetch)>>,
    /// Functional whole-L2 tag array for [`MemoryModel::InfiniteBw`].
    functional_l2: Option<TagArray>,
    telemetry: Telemetry,
    ids: SeriesIds,
    audit: FetchAudit,
    /// Sampled per-fetch lifecycle tracer (disabled when
    /// `cfg.trace_sample == 0`).
    trace: TraceSink,
    /// Last-sampled flit counters, for per-cycle rate deltas.
    prev_req_flits: u64,
    prev_rep_flits: u64,
    /// Last-sampled L2 stall totals (bp-ICNT, port, cache, MSHR, bp-DRAM).
    prev_l2_stalls: [u64; 5],
    /// Per-core blocked flags reused by [`GpuSim::deliver_ideal`] every core
    /// cycle (hoisted out of the hot loop so it allocates nothing).
    ideal_blocked: Vec<bool>,
    /// Reusable holding deque for the ideal-delivery compaction pass.
    ideal_scratch: VecDeque<(u64, MemFetch)>,
    /// Event core enabled (`!force_naive_loop`): components sleep through
    /// provably-quiet windows and the loop jumps when everything sleeps.
    ev: bool,
    /// Observational fast-forward engagement counters.
    ff_stats: FastForwardStats,
    /// Per-phase wall time (populated only under `cfg.profile_phases`).
    profile: PhaseProfile,
    /// Host-side span profiler (present only under `cfg.profile_host`).
    /// Strictly observational: nothing it reads from the clock ever feeds
    /// back into simulation state.
    host_prof: Option<HostProfiler>,
    workload: String,
}

impl std::fmt::Debug for GpuSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuSim")
            .field("workload", &self.workload)
            .field("core_cycles", &self.clocks.domain(DomainId::Core).cycles())
            .finish_non_exhaustive()
    }
}

impl GpuSim {
    /// Builds the simulator for `cfg` running `workload`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`GpuConfig::validate`].
    pub fn new(cfg: GpuConfig, workload: &WorkloadSpec) -> Self {
        workload
            .validate()
            .unwrap_or_else(|e| panic!("invalid workload: {e}"));
        Self::from_sources(cfg, workload.name, |c| {
            Box::new(workload.source_for_core(c))
        })
    }

    /// Builds the simulator with an arbitrary per-core instruction source —
    /// e.g. replaying a recorded [`gmh_workloads::TraceBundle`] or feeding
    /// streams converted from real GPU traces. `factory(core)` is called
    /// once per core.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`GpuConfig::validate`].
    pub fn from_sources(
        cfg: GpuConfig,
        name: &str,
        mut factory: impl FnMut(usize) -> Box<dyn gmh_simt::inst::InstSource + Send>,
    ) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid config: {e}"));
        let mut cores: Vec<SimtCore> = (0..cfg.n_cores)
            .map(|c| SimtCore::new(c, cfg.core.clone(), factory(c)))
            .collect();
        let mut banks: Vec<L2Bank> = (0..cfg.n_l2_banks)
            .map(|_| {
                L2Bank::new(
                    cfg.l2_bank.clone(),
                    cfg.l2_access_queue,
                    cfg.l2_response_queue,
                    cfg.l2_data_port_bytes,
                    cfg.l2_latency,
                )
            })
            .collect();
        let mut channels: Vec<DramChannel> = (0..cfg.n_channels)
            .map(|ch| DramChannel::new(cfg.dram.clone(), ch))
            .collect();
        let (req_net, rep_net) =
            Crossbar::new(cfg.icnt.clone(), cfg.n_cores, cfg.n_l2_banks).into_parts();
        let functional_l2 = match cfg.memory_model {
            MemoryModel::InfiniteBw { .. } => {
                // One functional tag array covering the whole shared L2.
                let total = cfg.l2_bank.size_bytes * cfg.n_l2_banks as u64;
                Some(TagArray::new(total, cfg.l2_bank.assoc))
            }
            _ => None,
        };
        let mut telemetry = Telemetry::new(cfg.telemetry_window);
        let ids = SeriesIds::register(&mut telemetry);
        let trace_seed = stable_hash_str(name) ^ TRACE_SEED_SALT;
        let trace = TraceSink::new(
            cfg.trace_sample,
            usize::try_from(cfg.trace_event_cap).unwrap_or(usize::MAX),
            trace_seed,
        );
        let n_shards = Self::resolved_threads(&cfg);
        let layout = Layout::new(&cfg, n_shards);
        let mut shards: Vec<Shard> = (0..n_shards)
            .map(|id| Shard {
                id,
                cores: take_chunk(&mut cores, layout.core_chunk),
                banks: take_chunk(&mut banks, layout.bank_chunk),
                channels: take_chunk(&mut channels, layout.chan_chunk),
                nets: Vec::new(),
                sched: ShardSched::hollow(),
                trace: TraceSink::shard(cfg.trace_sample, trace_seed),
                active_regions: 0,
            })
            .collect();
        debug_assert!(cores.is_empty() && banks.is_empty() && channels.is_empty());
        if n_shards > 1 {
            shards[0].nets.push(req_net);
            shards[1].nets.push(rep_net);
        } else {
            shards[0].nets.push(req_net);
            shards[0].nets.push(rep_net);
        }
        let clocks = ClockDomains::new(cfg.core_mhz, cfg.icnt_mhz, cfg.dram_mhz);
        // Classes a memory model never ticks are born parked; the event
        // core then never probes, wakes or flushes them — mirroring the
        // naive loop, which never touches them either.
        let ev = !cfg.force_naive_loop;
        let hier = matches!(
            cfg.memory_model,
            MemoryModel::Full | MemoryModel::InfiniteDram { .. }
        );
        let full = matches!(cfg.memory_model, MemoryModel::Full);
        let periods = [
            clocks.domain(DomainId::Core).period_ps(),
            clocks.domain(DomainId::Icnt).period_ps(),
            clocks.domain(DomainId::Dram).period_ps(),
        ];
        for s in &mut shards {
            s.sched = ShardSched::new(
                ev,
                [s.cores.len(), s.banks.len(), s.channels.len(), s.nets.len()],
                [true, hier, full, hier],
                periods,
            );
        }
        GpuSim {
            clocks,
            shards,
            layout,
            ideal_fast: VecDeque::new(),
            ideal_slow: VecDeque::new(),
            ideal_dram: vec![VecDeque::new(); cfg.n_l2_banks],
            functional_l2,
            telemetry,
            ids,
            audit: FetchAudit::default(),
            trace,
            prev_req_flits: 0,
            prev_rep_flits: 0,
            prev_l2_stalls: [0; 5],
            ideal_blocked: vec![false; cfg.n_cores],
            ideal_scratch: VecDeque::new(),
            ev,
            ff_stats: FastForwardStats::default(),
            profile: PhaseProfile::default(),
            host_prof: cfg.profile_host.then(HostProfiler::new),
            workload: name.to_string(),
            cfg,
        }
    }

    /// Resolves the shard/worker count for `cfg`: the `sim_threads` knob
    /// when set, else the `GMH_SIM_THREADS` / `GMH_THREADS` environment
    /// variables (the former wins so job-level parallelism in the
    /// experiment runner can cap per-sim threads independently), else 1.
    /// `force_serial` and `force_naive_loop` pin the serial oracle. The
    /// count only affects scheduling, never results.
    fn resolved_threads(cfg: &GpuConfig) -> usize {
        if cfg.force_serial || cfg.force_naive_loop {
            return 1;
        }
        let n = if cfg.sim_threads > 0 {
            cfg.sim_threads
        } else {
            std::env::var("GMH_SIM_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .or_else(|| {
                    std::env::var("GMH_THREADS")
                        .ok()
                        .and_then(|v| v.parse().ok())
                })
                .unwrap_or(1)
        };
        n.clamp(1, MAX_SHARDS.min(cfg.n_cores))
    }

    // ---- component accessors -------------------------------------------------
    //
    // Global component indices map to (shard, slot) by the contiguous
    // chunking in `Layout`; every serial step addresses components through
    // these, so the sweep order is identical for any shard count.

    fn core(&self, c: usize) -> &SimtCore {
        &self.shards[c / self.layout.core_chunk].cores[c % self.layout.core_chunk]
    }

    fn core_mut(&mut self, c: usize) -> &mut SimtCore {
        &mut self.shards[c / self.layout.core_chunk].cores[c % self.layout.core_chunk]
    }

    fn bank(&self, b: usize) -> &L2Bank {
        &self.shards[b / self.layout.bank_chunk].banks[b % self.layout.bank_chunk]
    }

    fn bank_mut(&mut self, b: usize) -> &mut L2Bank {
        &mut self.shards[b / self.layout.bank_chunk].banks[b % self.layout.bank_chunk]
    }

    fn channel(&self, ch: usize) -> &DramChannel {
        &self.shards[ch / self.layout.chan_chunk].channels[ch % self.layout.chan_chunk]
    }

    fn channel_mut(&mut self, ch: usize) -> &mut DramChannel {
        &mut self.shards[ch / self.layout.chan_chunk].channels[ch % self.layout.chan_chunk]
    }

    /// The request (core → L2) network: always shard 0's first net.
    fn req(&self) -> &Network {
        &self.shards[0].nets[0]
    }

    fn req_mut(&mut self) -> &mut Network {
        &mut self.shards[0].nets[0]
    }

    /// The reply (L2 → core) network: shard 1's net when sharded (the two
    /// networks switch independently), else shard 0's second net.
    fn rep(&self) -> &Network {
        if self.shards.len() > 1 {
            &self.shards[1].nets[0]
        } else {
            &self.shards[0].nets[1]
        }
    }

    fn rep_mut(&mut self) -> &mut Network {
        if self.shards.len() > 1 {
            &mut self.shards[1].nets[0]
        } else {
            &mut self.shards[0].nets[1]
        }
    }

    /// Whether global core `c` is awake. Always true in naive mode, so the
    /// gated coordinator loops degrade to their original ungated sweeps.
    fn core_awake(&self, c: usize) -> bool {
        let s = &self.shards[c / self.layout.core_chunk];
        s.sched.awake[s.sched.core_id(c % self.layout.core_chunk)]
    }

    /// Whether global L2 bank `b` is awake (see [`GpuSim::core_awake`]).
    fn bank_awake(&self, b: usize) -> bool {
        let s = &self.shards[b / self.layout.bank_chunk];
        s.sched.awake[s.sched.bank_id(b % self.layout.bank_chunk)]
    }

    // ---- cross-component wakes ----------------------------------------------
    //
    // Every coordinator step that hands work to a component first wakes it
    // at the last own-domain tick the component has provably absorbed
    // (flushing the owed quiet cycles through its bulk skip hook), so the
    // mutation lands on exactly the state the naive loop would have.

    fn wake_core_at(&mut self, c: usize, target: u64) {
        let chunk = self.layout.core_chunk;
        self.shards[c / chunk].wake_core(c % chunk, target);
    }

    fn wake_bank_at(&mut self, b: usize, target: u64) {
        let chunk = self.layout.bank_chunk;
        self.shards[b / chunk].wake_bank(b % chunk, target);
    }

    fn wake_channel_at(&mut self, ch: usize, target: u64) {
        let chunk = self.layout.chan_chunk;
        self.shards[ch / chunk].wake_channel(ch % chunk, target);
    }

    fn wake_req_net_at(&mut self, target: u64) {
        self.shards[0].wake_net(0, target);
    }

    fn wake_rep_net_at(&mut self, target: u64) {
        if self.shards.len() > 1 {
            self.shards[1].wake_net(0, target);
        } else {
            self.shards[0].wake_net(1, target);
        }
    }

    fn cores(&self) -> impl Iterator<Item = &SimtCore> {
        self.shards.iter().flat_map(|s| s.cores.iter())
    }

    fn banks(&self) -> impl Iterator<Item = &L2Bank> {
        self.shards.iter().flat_map(|s| s.banks.iter())
    }

    fn channels(&self) -> impl Iterator<Item = &DramChannel> {
        self.shards.iter().flat_map(|s| s.channels.iter())
    }

    /// The workload name this sim runs.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// Number of parallel tick domains this sim was built with (1 =
    /// serial).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard count of regions actually executed (a shard is charged
    /// only when it owned components of the region's class). Observational
    /// — the shard-utilization tests pin that a saturated parallel run
    /// really exercises multiple shards.
    pub fn shard_activity(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.active_regions).collect()
    }

    /// Fast-forward engagement counters for the run so far.
    pub fn ff_stats(&self) -> &FastForwardStats {
        &self.ff_stats
    }

    /// Per-phase wall-time breakdown (all zero unless the run was
    /// configured with [`GpuConfig::profile_phases`]).
    pub fn phase_profile(&self) -> &PhaseProfile {
        &self.profile
    }

    /// Consumes the host profiler and freezes it into a
    /// [`HostReport`] — call after [`GpuSim::run`]. `None` when
    /// [`GpuConfig::profile_host`] was off or the report was already
    /// taken.
    pub fn take_host_report(&mut self) -> Option<HostReport> {
        self.host_prof.take().map(HostProfiler::finish)
    }

    fn uses_hierarchy(&self) -> bool {
        matches!(
            self.cfg.memory_model,
            MemoryModel::Full | MemoryModel::InfiniteDram { .. }
        )
    }

    fn done(&self) -> bool {
        if !self.cores().all(|c| c.done()) {
            return false;
        }
        if !self.ideal_fast.is_empty()
            || !self.ideal_slow.is_empty()
            || self.ideal_dram.iter().any(|q| !q.is_empty())
        {
            return false;
        }
        if self.uses_hierarchy() {
            if !self.req().is_idle() || !self.rep().is_idle() {
                return false;
            }
            if !self.banks().all(|b| b.is_idle()) {
                return false;
            }
            if !self.channels().all(|c| c.is_idle()) {
                return false;
            }
        }
        true
    }

    /// Runs to completion (or the cycle cap) and returns the statistics.
    ///
    /// The loop is event-aware: when every component proves itself inert
    /// (the internal `try_fast_forward` probe) the clocks jump to the earliest
    /// possible next event in one step, with each component replaying its
    /// per-cycle bookkeeping in bulk. The jump is bit-identical to stepping
    /// naively by construction; `cfg.force_naive_loop` disables it so
    /// equivalence tests can compare both paths.
    pub fn run(&mut self) -> SimStats {
        // One worker thread per non-coordinator shard; the coordinator
        // always runs shard 0's regions itself. Serial runs (one shard)
        // spawn nothing and never touch a channel.
        let prof_epoch = self.host_prof.as_ref().map(HostProfiler::epoch);
        let pool =
            (self.shards.len() > 1).then(|| ParPool::spawn(self.shards.len() - 1, prof_epoch));
        let stats = self.run_loop(pool.as_ref());
        if let Some(p) = pool {
            let lanes = p.shutdown();
            if let Some(hp) = self.host_prof.as_mut() {
                hp.adopt_workers(lanes);
            }
        }
        stats
    }

    fn run_loop(&mut self, pool: Option<&ParPool>) -> SimStats {
        let mut hit_cap = false;
        loop {
            let core_cycles = self.clocks.domain(DomainId::Core).cycles();
            if core_cycles >= self.cfg.max_core_cycles {
                hit_cap = true;
                break;
            }
            // done() is cheap (drained-warp counters), but the coarse
            // 64-cycle stride is kept because it pins the recorded
            // termination cycle — which the jump path must not overshoot
            // (it refuses to skip once done() holds).
            if core_cycles.is_multiple_of(64) && self.done() {
                break;
            }
            if self.ev && self.try_jump() {
                continue;
            }
            let fired = self.clocks.advance();
            let now_ps = self.clocks.now();
            if self.ev {
                self.drain_due_wakes(fired, now_ps);
            }
            if self.host_prof.is_some() {
                self.dispatch_ticks_host(fired, now_ps, pool);
            } else if self.cfg.profile_phases {
                self.dispatch_ticks_profiled(fired, now_ps, pool);
            } else {
                self.dispatch_ticks(fired, now_ps, pool);
            }
        }
        self.flush_all();
        let stats = self.collect(hit_cap);
        // Conservation must hold on every run: a fetch that vanished (or
        // returned twice, or traveled back in time) is a simulator bug.
        // Cycle-capped runs may legitimately leave fetches in flight.
        if let Err(e) = self.audit.finish(!hit_cap) {
            panic!(
                "fetch-conservation audit failed on workload {:?}: {e}",
                self.workload
            );
        }
        // The trace is validated against the same invariants the audit
        // enforces for counts: per-fetch event order and time monotonicity.
        if let Err(e) = self.trace.validate() {
            panic!(
                "trace validation failed on workload {:?}: {e}",
                self.workload
            );
        }
        stats
    }

    /// Runs every domain tick fired by one clock edge (the naive path).
    fn dispatch_ticks(&mut self, fired: TickSet, now_ps: Picos, pool: Option<&ParPool>) {
        if fired.icnt {
            if self.uses_hierarchy() {
                self.icnt_tick(fired, now_ps, pool);
            }
            self.sample_telemetry();
        }
        if fired.dram {
            self.dram_tick(pool);
        }
        if fired.core {
            self.core_tick(now_ps, pool);
        }
    }

    /// [`GpuSim::dispatch_ticks`] with a wall-clock timer around each phase
    /// (same calls in the same order; results are identical).
    fn dispatch_ticks_profiled(&mut self, fired: TickSet, now_ps: Picos, pool: Option<&ParPool>) {
        use std::time::Instant;
        if fired.icnt {
            if self.uses_hierarchy() {
                let t0 = Instant::now();
                self.icnt_tick(fired, now_ps, pool);
                self.profile.icnt += t0.elapsed();
            }
            let t0 = Instant::now();
            self.sample_telemetry();
            self.profile.telemetry += t0.elapsed();
        }
        if fired.dram {
            let t0 = Instant::now();
            self.dram_tick(pool);
            self.profile.dram += t0.elapsed();
        }
        if fired.core {
            let t0 = Instant::now();
            self.core_tick(now_ps, pool);
            self.profile.core += t0.elapsed();
        }
    }

    /// [`GpuSim::dispatch_ticks`] with host-profiler spans around each
    /// phase (same calls in the same order; results are identical). Spans
    /// chain — the end of one phase is the start of the next — so a fully
    /// fired edge costs one clock read per phase boundary, not two.
    fn dispatch_ticks_host(&mut self, fired: TickSet, now_ps: Picos, pool: Option<&ParPool>) {
        let mut t = std::time::Instant::now();
        if fired.icnt {
            if self.uses_hierarchy() {
                self.icnt_tick(fired, now_ps, pool);
                t = self.host_span_chain(HostPhase::IcntTick, t);
            }
            self.sample_telemetry();
            t = self.host_span_chain(HostPhase::Telemetry, t);
        }
        if fired.dram {
            self.dram_tick(pool);
            t = self.host_span_chain(HostPhase::DramTick, t);
        }
        if fired.core {
            self.core_tick(now_ps, pool);
            self.host_span_chain(HostPhase::CoreTick, t);
        }
    }

    /// Closes a coordinator span that started at `t0` and returns its end
    /// timestamp (pass-through when profiling is off, so chained call
    /// sites stay unconditional).
    #[inline]
    fn host_span_chain(&mut self, phase: HostPhase, t0: std::time::Instant) -> std::time::Instant {
        match self.host_prof.as_mut() {
            Some(hp) => hp.coord.end_chain(phase, t0),
            None => t0,
        }
    }

    /// Option-carrying variant of [`GpuSim::host_span_chain`] for call
    /// sites that only open spans when profiling is on.
    #[inline]
    fn host_span_opt(
        &mut self,
        phase: HostPhase,
        t0: Option<std::time::Instant>,
    ) -> Option<std::time::Instant> {
        match (self.host_prof.as_mut(), t0) {
            (Some(hp), Some(t)) => Some(hp.coord.end_chain(phase, t)),
            _ => None,
        }
    }

    /// Executes one parallel region over every shard and then merges: the
    /// coordinator ships each non-empty worker shard out (by moving it —
    /// `Shard::empty` is an allocation-free placeholder), runs shard 0's
    /// slice itself, blocks until every shard is home, and finally drains
    /// the shard trace sinks in ascending shard order. The drain is the
    /// deterministic merge point: with contiguous chunking, shard order ×
    /// within-shard order is exactly the serial sweep order, so the global
    /// event stream is byte-identical for any shard count.
    fn run_region(&mut self, region: Region, pool: Option<&ParPool>) {
        // The serial path records no per-region spans: its region work is
        // already attributed by the enclosing top-level phase, and keeping
        // the hot path at zero extra clock reads is what holds profiler
        // overhead under budget. Pool mode records the coordinator's
        // dispatch / inline-exec / barrier-wait split — the numbers the
        // scaling ROADMAP item needs.
        match pool {
            None => {
                for s in &mut self.shards {
                    s.run_region(region);
                }
            }
            Some(pool) => {
                let t0 = self.host_prof.as_ref().and_then(|hp| hp.coord.begin());
                let mut dispatched: u64 = 0;
                for w in 1..self.shards.len() {
                    if !self.shards[w].wants(region) {
                        continue;
                    }
                    let sh = std::mem::replace(&mut self.shards[w], Shard::empty(w));
                    pool.dispatch(w - 1, region, sh);
                    dispatched += 1;
                }
                let t1 = self.host_span_opt(HostPhase::Dispatch, t0);
                self.shards[0].run_region(region);
                let t2 = self.host_span_opt(HostPhase::RegionExec, t1);
                for _ in 0..dispatched {
                    let sh = pool.collect();
                    let id = sh.id;
                    self.shards[id] = sh;
                }
                if let Some(hp) = self.host_prof.as_mut() {
                    hp.coord.end(HostPhase::BarrierWait, t2);
                    if dispatched > 0 {
                        hp.count_dispatches(dispatched);
                        hp.count_collect();
                    }
                }
            }
        }
        let tm = if pool.is_some() {
            self.host_prof.as_ref().and_then(|hp| hp.coord.begin())
        } else {
            None
        };
        for s in &mut self.shards {
            self.trace.absorb(&mut s.trace);
        }
        if tm.is_some() {
            let n_shards = self.shards.len() as u64;
            if let Some(hp) = self.host_prof.as_mut() {
                hp.coord.end(HostPhase::TraceMerge, tm);
                hp.count_merges(n_shards);
            }
        }
    }

    /// Attempts one event-core jump. Returns `true` when it advanced the
    /// clocks (the caller restarts its loop), `false` when any component is
    /// still awake or no tick fit under the bound.
    ///
    /// Safety argument: a sleeping component proved (via its
    /// `next_event_bound` probe, re-run after its every cycle) that it is
    /// inert on every own-domain tick strictly before its scheduled wake.
    /// While *every* component sleeps, no new event can be created — the
    /// machine's state is frozen apart from constant per-cycle bookkeeping
    /// — so the earliest scheduled wake (as an exclusive picosecond bound)
    /// is a sound global jump target. The skipped per-cycle bookkeeping is
    /// not replayed here at all: each sleeper's `done` ledger keeps the
    /// debt, and the bulk skip hooks settle it at wake (or end-of-run
    /// flush) time. Only telemetry, which samples global state per
    /// interconnect tick, is replayed eagerly — every sampled value is
    /// frozen across the window, so repeating one sample is exact.
    fn try_jump(&mut self) -> bool {
        let mut cores = 0;
        let mut banks = 0;
        let mut chans = 0;
        let mut nets = 0;
        for s in &self.shards {
            cores += s.sched.awake_cores;
            banks += s.sched.awake_banks;
            chans += s.sched.awake_chans;
            nets += s.sched.awake_nets;
        }
        if cores + banks + chans + nets > 0 {
            // Mirror the pre-event probe's first-busy attribution order
            // (nets and their backlogs, then banks, channels, cores).
            if nets > 0 {
                self.ff_stats.busy_icnt += 1;
            } else if banks > 0 {
                self.ff_stats.busy_bank += 1;
            } else if chans > 0 {
                self.ff_stats.busy_dram += 1;
            } else {
                self.ff_stats.busy_core += 1;
            }
            return false;
        }
        // A drained machine must step naively to its next 64-cycle done()
        // poll so the recorded termination cycle is unchanged.
        if self.done() {
            return false;
        }
        let h0 = self.host_prof.as_ref().and_then(|hp| hp.coord.begin());
        let t0 = self.cfg.profile_phases.then(std::time::Instant::now);
        let counts = self.clocks.fast_forward(self.jump_target());
        let jumped = counts.total() > 0;
        if jumped {
            self.ff_stats.jumps += 1;
            self.ff_stats.skipped_core += counts.core;
            self.ff_stats.skipped_icnt += counts.icnt;
            self.ff_stats.skipped_dram += counts.dram;
            if counts.icnt > 0 {
                self.sample_telemetry_repeated(counts.icnt);
            }
        } else {
            self.ff_stats.zero_window += 1;
        }
        if let Some(t0) = t0 {
            self.profile.fast_forward += t0.elapsed();
        }
        if h0.is_some() {
            let phase = if jumped {
                HostPhase::FfJump
            } else {
                HostPhase::FfProbe
            };
            if let Some(hp) = self.host_prof.as_mut() {
                hp.coord.end(phase, h0);
            }
        }
        jumped
    }

    /// The exclusive picosecond bound for an all-asleep jump: the earliest
    /// scheduled component wake, the earliest ideal-queue ready time, or
    /// the cycle cap — whichever comes first. A domain tick with index N
    /// fires at `(N-1)*period`; the ideal queues are FIFO by ready time,
    /// so each front is that queue's earliest event (a due-but-blocked
    /// front pins the bound into the past and the jump fires nothing).
    fn jump_target(&self) -> Picos {
        let core_period = self.clocks.domain(DomainId::Core).period_ps();
        // Seed with the cycle cap: naive execution fires nothing at any
        // instant after core tick max_core_cycles ((max-1)*core_period).
        let mut t: Picos = (self.cfg.max_core_cycles.saturating_sub(1)) * core_period + 1;
        for s in &self.shards {
            if let Some((wake_ps, _)) = s.sched.q.peek() {
                t = t.min(wake_ps);
            }
        }
        for q in [&self.ideal_fast, &self.ideal_slow] {
            if let Some((ready_cycle, _)) = q.front() {
                t = t.min(ready_cycle.saturating_sub(1) * core_period);
            }
        }
        for q in &self.ideal_dram {
            if let Some((ready_ps, _)) = q.front() {
                t = t.min(*ready_ps);
            }
        }
        t
    }

    /// Wakes every component whose scheduled time has arrived at this
    /// clock edge, flushing its owed quiet cycles first. Runs before the
    /// tick dispatch so the woken component's own region (which provably
    /// fires this instant — wake times are own-domain tick instants)
    /// executes its final, possibly-eventful tick.
    fn drain_due_wakes(&mut self, fired: TickSet, now_ps: Picos) {
        // Common case: nothing due anywhere — one peek per shard.
        if !self
            .shards
            .iter()
            .any(|s| matches!(s.sched.q.peek(), Some((w, _)) if w <= now_ps))
        {
            return;
        }
        let core_cyc = self.clocks.domain(DomainId::Core).cycles();
        let icnt_cyc = self.clocks.domain(DomainId::Icnt).cycles();
        let dram_cyc = self.clocks.domain(DomainId::Dram).cycles();
        let t0 = self.host_prof.as_ref().and_then(|hp| hp.coord.begin());
        let mut woke = 0;
        for s in &mut self.shards {
            woke += s.drain_wakes(now_ps, fired, core_cyc, icnt_cyc, dram_cyc);
        }
        debug_assert!(woke > 0, "a due peek must drain at least one wake");
        if let Some(hp) = self.host_prof.as_mut() {
            hp.coord.end(HostPhase::SchedPop, t0);
        }
    }

    /// End-of-run settlement of the lazy skipped-cycle ledger: every
    /// sleeping component replays its owed quiet cycles up to the final
    /// domain tick counts, so collected stats match the naive loop's
    /// exactly. No-op for awake components and in naive mode.
    fn flush_all(&mut self) {
        if !self.ev {
            return;
        }
        let core_end = self.clocks.domain(DomainId::Core).cycles();
        let icnt_end = self.clocks.domain(DomainId::Icnt).cycles();
        let dram_end = self.clocks.domain(DomainId::Dram).cycles();
        let hier = self.uses_hierarchy();
        let full = matches!(self.cfg.memory_model, MemoryModel::Full);
        let t0 = self.host_prof.as_ref().and_then(|hp| hp.coord.begin());
        for s in &mut self.shards {
            s.flush_end(core_end, icnt_end, dram_end, hier, full);
        }
        if let Some(hp) = self.host_prof.as_mut() {
            hp.coord.end(HostPhase::SchedResched, t0);
        }
    }

    /// Computes this interconnect cycle's sample for every telemetry series
    /// (updating the flit/stall delta baselines as a side effect). Shared
    /// by the per-cycle path and the fast-forward bulk replay — during a
    /// quiescent window every one of these values is frozen, so computing
    /// them once and repeating the sample is exact.
    fn telemetry_values(&mut self) -> [(SeriesId, f64); 19] {
        let ids = self.ids;
        let l1_miss: usize = self.cores().map(|c| c.miss_queue_len()).sum();
        let resp_fifo: usize = self.cores().map(|c| c.response_fifo_len()).sum();

        let (req_flits, rep_flits) = (
            self.req().stats().flits.get(),
            self.rep().stats().flits.get(),
        );
        let req_rate = req_flits - self.prev_req_flits;
        let rep_rate = rep_flits - self.prev_rep_flits;
        let req_buffered = self.req().buffered_flits();
        let req_backlog = self.req().ejection_backlog();
        let rep_buffered = self.rep().buffered_flits();
        let rep_backlog = self.rep().ejection_backlog();
        self.prev_req_flits = req_flits;
        self.prev_rep_flits = rep_flits;

        let mut access_q = 0usize;
        let mut miss_q = 0usize;
        let mut resp_q = 0usize;
        let mut stalls = [0u64; 5];
        for b in self.banks() {
            access_q += b.access_queue_len();
            miss_q += b.miss_queue_len();
            resp_q += b.response_queue_len();
            let s = b.stalls();
            stalls[0] += s.bp_icnt.get();
            stalls[1] += s.port.get();
            stalls[2] += s.cache.get();
            stalls[3] += s.mshr.get();
            stalls[4] += s.bp_dram.get();
        }
        let mut stall_deltas = [0u64; 5];
        for i in 0..5 {
            stall_deltas[i] = stalls[i] - self.prev_l2_stalls[i];
        }
        self.prev_l2_stalls = stalls;

        let sched: usize = self.channels().map(|c| c.queue_len()).sum();
        let dresp: usize = self.channels().map(|c| c.response_queue_len()).sum();

        let ideal: usize = self.ideal_fast.len()
            + self.ideal_slow.len()
            + self.ideal_dram.iter().map(|q| q.len()).sum::<usize>();

        [
            (ids.l1_miss_queue, l1_miss as f64),
            (ids.core_response_fifo, resp_fifo as f64),
            (ids.req_inject_flits, req_buffered as f64),
            (ids.req_eject_backlog, req_backlog as f64),
            (ids.req_flits_per_cycle, req_rate as f64),
            (ids.rep_inject_flits, rep_buffered as f64),
            (ids.rep_eject_backlog, rep_backlog as f64),
            (ids.rep_flits_per_cycle, rep_rate as f64),
            (ids.l2_access_queue, access_q as f64),
            (ids.l2_miss_queue, miss_q as f64),
            (ids.l2_response_queue, resp_q as f64),
            (ids.l2_stall_bp_icnt, stall_deltas[0] as f64),
            (ids.l2_stall_port, stall_deltas[1] as f64),
            (ids.l2_stall_cache, stall_deltas[2] as f64),
            (ids.l2_stall_mshr, stall_deltas[3] as f64),
            (ids.l2_stall_bp_dram, stall_deltas[4] as f64),
            (ids.dram_sched_queue, sched as f64),
            (ids.dram_response_queue, dresp as f64),
            (ids.ideal_in_flight, ideal as f64),
        ]
    }

    /// Samples every observed queue/counter into the telemetry sink; runs
    /// once per interconnect cycle.
    fn sample_telemetry(&mut self) {
        for (id, v) in self.telemetry_values() {
            self.telemetry.record(id, v);
        }
        self.telemetry.tick();
    }

    /// Replays `k` identical telemetry samples at once (the fast-forward
    /// counterpart of [`GpuSim::sample_telemetry`]): the sampled values are
    /// frozen across a quiescent window, so each skipped interconnect cycle
    /// records the same sample. Windows are flushed at the same boundaries
    /// the per-cycle path would hit; every sum stays exact because the
    /// samples are integer-valued and far below 2^53.
    fn sample_telemetry_repeated(&mut self, k: u64) {
        let values = self.telemetry_values();
        let mut left = k;
        while left > 0 {
            let chunk = left.min(self.telemetry.ticks_to_boundary());
            for (id, v) in values {
                self.telemetry.record_n(id, v, chunk);
            }
            self.telemetry.tick_n(chunk);
            left -= chunk;
        }
    }

    // ---- core domain --------------------------------------------------------

    fn core_tick(&mut self, now_ps: Picos, pool: Option<&ParPool>) {
        let cyc = self.clocks.domain(DomainId::Core).cycles();
        self.run_region(Region::Core { now_ps, cyc }, pool);
        match self.cfg.memory_model {
            MemoryModel::Full | MemoryModel::InfiniteDram { .. } => {}
            MemoryModel::FixedL1MissLatency(lat) => {
                for i in 0..self.cfg.n_cores {
                    // A sleeping core has an empty L1 miss queue.
                    if !self.core_awake(i) {
                        continue;
                    }
                    while let Some(f) = self.core_mut(i).pop_outgoing() {
                        self.audit.emitted(&f);
                        self.trace
                            .record_fetch(&f, now_ps, TraceEventKind::DequeuedAt(Level::L1));
                        if f.kind.wants_response() {
                            self.ideal_fast.push_back((cyc + lat, f));
                        } else {
                            // Stores are absorbed by the ideal memory.
                            self.audit.absorbed(&f);
                            self.trace
                                .record_fetch(&f, now_ps, TraceEventKind::Absorbed);
                        }
                    }
                }
                self.deliver_ideal(cyc, now_ps);
            }
            MemoryModel::InfiniteBw { l2_hit, dram } => {
                for i in 0..self.cfg.n_cores {
                    if !self.core_awake(i) {
                        continue;
                    }
                    while let Some(f) = self.core_mut(i).pop_outgoing() {
                        self.audit.emitted(&f);
                        self.trace
                            .record_fetch(&f, now_ps, TraceEventKind::DequeuedAt(Level::L1));
                        // INVARIANT: functional_l2 is constructed whenever
                        // the memory model is InfiniteBw.
                        let tags = self.functional_l2.as_mut().expect("InfiniteBw has tags");
                        let hit = tags.access_functional(f.line, f.kind.is_write());
                        if f.kind.wants_response() {
                            if hit {
                                self.ideal_fast.push_back((cyc + l2_hit, f));
                            } else {
                                self.ideal_slow.push_back((cyc + dram, f));
                            }
                        } else {
                            self.audit.absorbed(&f);
                            self.trace
                                .record_fetch(&f, now_ps, TraceEventKind::Absorbed);
                        }
                    }
                }
                self.deliver_ideal(cyc, now_ps);
            }
        }
    }

    fn deliver_ideal(&mut self, cyc: u64, now_ps: Picos) {
        // Each queue is FIFO by ready time (constant latency per queue),
        // but the queues are shared across cores: one core's full response
        // FIFO must not hold back other cores' ready responses behind it.
        // Scan past entries for blocked cores, preserving per-core order.
        // The scan compacts survivors into a reusable scratch deque (a
        // single O(n) pass instead of O(n) `VecDeque::remove` per
        // delivery), and both the scratch and the per-core blocked flags
        // live on the sim, so the per-cycle path allocates nothing.
        for which in 0..2 {
            let src = if which == 0 {
                &mut self.ideal_fast
            } else {
                &mut self.ideal_slow
            };
            if !matches!(src.front(), Some((ready, _)) if *ready <= cyc) {
                continue; // nothing due: the common (and hot) case
            }
            let mut q = std::mem::take(src);
            let mut kept = std::mem::take(&mut self.ideal_scratch);
            debug_assert!(kept.is_empty());
            self.ideal_blocked.fill(false);
            while let Some((ready, f)) = q.pop_front() {
                if ready > cyc {
                    // Ready times are non-decreasing: keep the tail as is.
                    kept.push_back((ready, f));
                    break;
                }
                let core = f.core_id;
                if self.ideal_blocked[core] || !self.core(core).can_accept_response() {
                    self.ideal_blocked[core] = true;
                    kept.push_back((ready, f));
                    continue;
                }
                let mut f = f;
                f.serviced_by = gmh_types::fetch::ServicedBy::Ideal;
                f.time.returned = now_ps;
                self.audit.returned(&f, now_ps);
                self.trace
                    .record_fetch(&f, now_ps, TraceEventKind::Returned);
                // The Core region already ran this tick: flush the sleeping
                // recipient through tick `cyc` before mutating it.
                self.wake_core_at(core, cyc);
                // INVARIANT: can_accept_response() held just above.
                self.core_mut(core).push_response(f).expect("space checked");
            }
            kept.append(&mut q);
            *if which == 0 {
                &mut self.ideal_fast
            } else {
                &mut self.ideal_slow
            } = kept;
            self.ideal_scratch = q; // drained, but keeps its capacity
        }
    }

    // ---- interconnect / L2 domain -------------------------------------------

    fn icnt_tick(&mut self, fired: TickSet, now_ps: Picos, pool: Option<&ParPool>) {
        let icnt_cyc = self.clocks.domain(DomainId::Icnt).cycles();
        // 1. Cores inject L1 miss traffic into the request network. A
        //    sleeping core has an empty L1 miss queue, so only awake cores
        //    can have a head to peek.
        for c in 0..self.cfg.n_cores {
            if !self.core_awake(c) {
                continue;
            }
            if let Some(head) = self.core(c).peek_outgoing() {
                let bytes = head.request_bytes();
                let dst = head.line.interleave(self.cfg.n_l2_banks);
                if self.req().can_inject(c, bytes) {
                    // The Net region runs *after* this step: flush the
                    // request switch through tick icnt_cyc - 1 so its
                    // router-latency stamp sees the current cycle.
                    self.wake_req_net_at(icnt_cyc - 1);
                    // INVARIANT: peek_outgoing() returned Some above.
                    let mut f = self.core_mut(c).pop_outgoing().expect("peeked");
                    self.audit.emitted(&f);
                    self.trace
                        .record_fetch(&f, now_ps, TraceEventKind::DequeuedAt(Level::L1));
                    self.trace
                        .record_fetch(&f, now_ps, TraceEventKind::EnqueuedAt(Level::Icnt));
                    f.time.icnt_inject = now_ps;
                    // INVARIANT: can_inject() held just above.
                    self.req_mut()
                        .inject(c, dst, f, bytes)
                        .expect("can_inject checked");
                }
            }
        }

        // 2. Switch both networks (independent — each in its own shard
        //    when the machine is sharded).
        self.run_region(Region::Net { cyc: icnt_cyc }, pool);

        // 3. Ejected requests enter L2 access queues (or stay in the
        //    crossbar's ejection buffers when a queue is full — that is the
        //    back-pressure path up toward the L1s). An empty backlog means
        //    every per-bank loop below would fall through its peek guard.
        if self.req().ejection_backlog() > 0 {
            for b in 0..self.cfg.n_l2_banks {
                while self.req().peek_eject(b).is_some() {
                    if !self.bank(b).can_accept() {
                        break;
                    }
                    // The Bank region runs after this step: flush the
                    // sleeping bank through tick icnt_cyc - 1 only.
                    self.wake_bank_at(b, icnt_cyc - 1);
                    // INVARIANT: peek_eject() returned Some in the loop guard.
                    let mut f = self.req_mut().pop_eject(b).expect("peeked");
                    f.time.l2_arrive = now_ps;
                    self.trace
                        .record_fetch(&f, now_ps, TraceEventKind::DequeuedAt(Level::Icnt));
                    if f.kind.wants_response() {
                        self.trace
                            .record_fetch(&f, now_ps, TraceEventKind::EnqueuedAt(Level::L2));
                    } else {
                        // A store reaching its L2 bank will be absorbed there
                        // (the bank retries internally until it lands); this is
                        // its terminal conservation event — and the trace's.
                        self.audit.absorbed(&f);
                        self.trace
                            .record_fetch(&f, now_ps, TraceEventKind::Absorbed);
                    }
                    // INVARIANT: can_accept() held just above.
                    self.bank_mut(b).push_access(f).expect("can_accept checked");
                }
            }
        }

        // 4. L2 bank pipelines. Before dispatching, each bank learns
        //    whether the reply crossbar would accept its next-ready
        //    response this tick (pull-based reply port): nothing between
        //    here and step 7 touches the reply network, so this credit is
        //    exactly the verdict injection will see, and `stall_cause`
        //    stays the single bp-ICNT attribution site (R5). The credit
        //    only reclassifies stalled cycles — it never gates progress —
        //    and is computed on the coordinator, so results are identical
        //    at every shard width.
        let l2_t0 = self.host_prof.as_ref().and_then(|hp| hp.coord.begin());
        for b in 0..self.cfg.n_l2_banks {
            // A sleeping bank does not cycle this tick, so its credit is
            // never read; it always receives a fresh credit on the first
            // tick it is awake for (wakes drain before this step).
            if !self.bank_awake(b) {
                continue;
            }
            let credit = match self.bank(b).response_ready_next() {
                Some(resp) => self.rep().can_inject(b, resp.response_bytes()),
                None => true,
            };
            self.bank_mut(b).set_reply_credit(credit);
        }
        self.run_region(
            Region::Bank {
                now_ps,
                cyc: icnt_cyc,
            },
            pool,
        );
        // The "l2_tick" sub-phase (credits + bank pipelines) nests inside
        // this icnt span by time containment.
        if let Some(hp) = self.host_prof.as_mut() {
            hp.coord.end(HostPhase::L2Tick, l2_t0);
        }

        // 5. L2 miss queues drain toward DRAM (or the ideal-DRAM pipe).
        let dram_cyc = self.clocks.domain(DomainId::Dram).cycles();
        let ideal_dram_lat = match self.cfg.memory_model {
            MemoryModel::InfiniteDram { latency } => Some(latency),
            _ => None,
        };
        for b in 0..self.cfg.n_l2_banks {
            // A sleeping bank has an empty miss queue.
            if !self.bank_awake(b) {
                continue;
            }
            let Some(head) = self.bank(b).miss_queue_front() else {
                continue;
            };
            let ch = head.line.interleave(self.cfg.n_channels);
            match ideal_dram_lat {
                Some(lat) => {
                    // INVARIANT: miss_queue_front() returned Some above.
                    let mut f = self.bank_mut(b).pop_miss().expect("peeked");
                    f.time.dram_arrive = now_ps;
                    self.trace
                        .record_fetch(&f, now_ps, TraceEventKind::DequeuedAt(Level::Dram));
                    if f.kind.wants_response() {
                        let period = 1_000_000 / self.cfg.core_mhz as Picos;
                        self.ideal_dram[b].push_back((now_ps + lat * period, f));
                    }
                    // Write-backs are absorbed instantly by the ideal DRAM.
                }
                None => {
                    if self.channel(ch).can_accept() {
                        // The Dram region does not run at pure-icnt
                        // instants; flush the channel through the last
                        // DRAM tick that already executed (one less when
                        // this edge fires DRAM too — that tick runs after
                        // this hand-off).
                        self.wake_channel_at(ch, dram_cyc - u64::from(fired.dram));
                        // INVARIANT: miss_queue_front() returned Some above.
                        let mut f = self.bank_mut(b).pop_miss().expect("peeked");
                        f.time.dram_arrive = now_ps;
                        // INVARIANT: can_accept() held just above.
                        self.channel_mut(ch)
                            .push(f, dram_cyc)
                            .expect("can_accept checked");
                    }
                }
            }
        }

        // 6. DRAM (or ideal-DRAM) responses fill the L2.
        match ideal_dram_lat {
            Some(_) => {
                for bank in 0..self.cfg.n_l2_banks {
                    while let Some((ready, f)) = self.ideal_dram[bank].front() {
                        if *ready > now_ps {
                            break;
                        }
                        let line = f.line;
                        if self.bank(bank).response_free()
                            < self.bank(bank).fill_response_needs(line)
                        {
                            break;
                        }
                        // INVARIANT: front() returned Some in the loop guard.
                        let (_, f) = self.ideal_dram[bank].pop_front().expect("front exists");
                        self.trace.record_fetch(
                            &f,
                            now_ps,
                            TraceEventKind::ServicedAt(Level::Dram),
                        );
                        // The Bank region already ran: flush the sleeping
                        // bank through tick icnt_cyc so the fill's ready
                        // stamp (bank.now + 1) lands on the next tick.
                        self.wake_bank_at(bank, icnt_cyc);
                        self.bank_mut(bank).deliver_fill(f, now_ps);
                    }
                }
            }
            None => {
                let dram_period = self.clocks.domain(DomainId::Dram).period_ps();
                for ch in 0..self.cfg.n_channels {
                    while let Some(f) = self.channel(ch).peek_response() {
                        let bank = f.line.interleave(self.cfg.n_l2_banks);
                        let line = f.line;
                        if self.bank(bank).response_free()
                            < self.bank(bank).fill_response_needs(line)
                        {
                            break;
                        }
                        // INVARIANT: peek_response() returned Some in the
                        // loop guard.
                        let (cas, f) = self.channel_mut(ch).pop_response_cas().expect("peeked");
                        // DRAM cycle c fires at wall time (c-1)*period; the
                        // clamp keeps the event stream monotone even for
                        // degenerate clock configurations.
                        let cas_ps = (cas.saturating_sub(1) * dram_period).min(now_ps);
                        self.trace.record_fetch(
                            &f,
                            cas_ps,
                            TraceEventKind::DequeuedAt(Level::Dram),
                        );
                        self.trace.record_fetch(
                            &f,
                            now_ps,
                            TraceEventKind::ServicedAt(Level::Dram),
                        );
                        // See the ideal branch above: flush through this
                        // tick before the fill stamps bank.now + 1.
                        self.wake_bank_at(bank, icnt_cyc);
                        self.bank_mut(bank).deliver_fill(f, now_ps);
                    }
                }
            }
        }

        // 7. L2 responses inject into the reply network. A sleeping bank
        //    never has a ready response (that would have kept it awake).
        for b in 0..self.cfg.n_l2_banks {
            if !self.bank_awake(b) {
                continue;
            }
            if let Some(resp) = self.bank(b).response_ready() {
                let bytes = resp.response_bytes();
                let dst = resp.core_id;
                if self.rep().can_inject(b, bytes) {
                    // The Net region already ran this tick: flush the reply
                    // switch through tick icnt_cyc before it stamps
                    // router latency against its own clock.
                    self.wake_rep_net_at(icnt_cyc);
                    // INVARIANT: response_ready() returned Some above.
                    let f = self.bank_mut(b).pop_response().expect("ready");
                    // An L2 hit is "serviced" when its response leaves the
                    // bank: lookup pipeline plus response-queue residency.
                    // DRAM-filled responses were serviced at the channel.
                    if f.serviced_by == gmh_types::fetch::ServicedBy::L2 {
                        self.trace
                            .record_fetch(&f, now_ps, TraceEventKind::ServicedAt(Level::L2));
                    }
                    self.trace
                        .record_fetch(&f, now_ps, TraceEventKind::EnqueuedAt(Level::Icnt));
                    // INVARIANT: can_inject() held just above.
                    self.rep_mut()
                        .inject(b, dst, f, bytes)
                        .expect("can_inject checked");
                }
            }
        }

        // 8. Ejected replies enter core response FIFOs. Same early-out as
        //    step 3: no backlog, nothing to re-offer.
        if self.rep().ejection_backlog() > 0 {
            let core_cyc = self.clocks.domain(DomainId::Core).cycles();
            for c in 0..self.cfg.n_cores {
                while self.rep().peek_eject(c).is_some() {
                    if !self.core(c).can_accept_response() {
                        break;
                    }
                    // The Core region runs after the icnt phase when this
                    // edge fires it: flush the sleeping core through the
                    // last core tick that already executed.
                    self.wake_core_at(c, core_cyc - u64::from(fired.core));
                    // INVARIANT: peek_eject() returned Some in the loop guard.
                    let f = self.rep_mut().pop_eject(c).expect("peeked");
                    self.audit.returned(&f, now_ps);
                    self.trace
                        .record_fetch(&f, now_ps, TraceEventKind::DequeuedAt(Level::Icnt));
                    self.trace
                        .record_fetch(&f, now_ps, TraceEventKind::Returned);
                    // INVARIANT: can_accept_response() held just above.
                    self.core_mut(c).push_response(f).expect("space checked");
                }
            }
        }
    }

    // ---- DRAM domain ---------------------------------------------------------

    fn dram_tick(&mut self, pool: Option<&ParPool>) {
        if !matches!(self.cfg.memory_model, MemoryModel::Full) {
            return;
        }
        let cyc = self.clocks.domain(DomainId::Dram).cycles();
        self.run_region(Region::Dram { cyc }, pool);
    }

    // ---- statistics -----------------------------------------------------------

    fn collect(&self, hit_cap: bool) -> SimStats {
        let mut stats = SimStats {
            hit_cycle_cap: hit_cap,
            ..SimStats::default()
        };
        stats.core_cycles = self.clocks.domain(DomainId::Core).cycles();

        let mut aml_sum = 0.0;
        let mut aml_n = 0u64;
        let mut aml_hist = gmh_types::LatencyHistogram::default();
        let mut ahl_sum = 0.0;
        let mut ahl_n = 0u64;
        let mut l1_reads = 0u64;
        let mut l1_hits = 0u64;
        for c in self.cores() {
            let s = c.stats();
            stats.insts += s.insts_issued;
            stats.issue.merge(&s.issue);
            stats.l1_stalls.merge(&s.l1_stalls);
            aml_sum += s.aml_ps.mean() * s.aml_ps.count() as f64;
            aml_n += s.aml_ps.count();
            aml_hist.merge(&s.aml_hist_ps);
            ahl_sum += s.l2_ahl_ps.mean() * s.l2_ahl_ps.count() as f64;
            ahl_n += s.l2_ahl_ps.count();
            l1_reads += c.l1d().stats().reads;
            l1_hits += c.l1d().stats().read_hits;
        }
        stats.ipc = if stats.core_cycles == 0 {
            0.0
        } else {
            stats.insts as f64 / stats.core_cycles as f64
        };
        let period = 1_000_000.0 / self.cfg.core_mhz as f64;
        stats.aml_core_cycles = if aml_n == 0 {
            0.0
        } else {
            aml_sum / aml_n as f64 / period
        };
        stats.aml_p50 = aml_hist.quantile(0.5) / period;
        stats.aml_p90 = aml_hist.quantile(0.9) / period;
        stats.aml_p99 = aml_hist.quantile(0.99) / period;
        stats.l2_ahl_core_cycles = if ahl_n == 0 {
            0.0
        } else {
            ahl_sum / ahl_n as f64 / period
        };
        stats.stall_fraction = stats.issue.stall_fraction();
        stats.l1_miss_rate = if l1_reads == 0 {
            0.0
        } else {
            1.0 - l1_hits as f64 / l1_reads as f64
        };

        let mut l2_reads = 0u64;
        let mut l2_hits = 0u64;
        for b in self.banks() {
            stats.l2_stalls.merge(b.stalls());
            stats.l2_access_occupancy.merge(b.access_occupancy());
            l2_reads += b.cache().stats().reads;
            l2_hits += b.cache().stats().read_hits;
        }
        stats.l2_miss_rate = if l2_reads == 0 {
            0.0
        } else {
            1.0 - l2_hits as f64 / l2_reads as f64
        };

        let mut eff_num = 0u64;
        let mut eff_den = 0u64;
        for ch in self.channels() {
            stats.dram_queue_occupancy.merge(ch.queue_occupancy());
            eff_num += ch.stats().efficiency.numerator();
            eff_den += ch.stats().efficiency.denominator();
        }
        stats.dram_efficiency = if eff_den == 0 {
            0.0
        } else {
            eff_num as f64 / eff_den as f64
        };

        stats.telemetry = self.telemetry.snapshot();
        stats.audit = self.audit.summary();
        stats.trace = self.trace.clone().into_data();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmh_workloads::catalog;
    use gmh_workloads::spec::{AddressMix, PhaseSpec, Suite, WorkloadSpec};

    /// A small fast workload for sim unit tests.
    fn tiny_workload() -> WorkloadSpec {
        WorkloadSpec {
            name: "tiny",
            suite: Suite::Rodinia,
            full_name: "tiny test workload",
            warps_per_core: 4,
            insts_per_warp: 60,
            code_lines: 2,
            mem_fraction: 0.4,
            write_fraction: 0.1,
            ilp: 2,
            alu_latency: 4,
            alu_dep_fraction: 0.1,
            accesses_per_mem: 1,
            mix: AddressMix::new(0.5, 0.4, 0.1),
            hot_lines: 64,
            shared_lines: 128,
            coherent_stream: false,
            phases: PhaseSpec::STEADY,
            seed: 42,
        }
    }

    fn small_cfg() -> GpuConfig {
        let mut c = GpuConfig::gtx480_baseline();
        c.n_cores = 2;
        c.max_core_cycles = 200_000;
        c
    }

    #[test]
    fn full_model_drains_tiny_workload() {
        let wl = tiny_workload();
        let mut sim = GpuSim::new(small_cfg(), &wl);
        let stats = sim.run();
        assert!(
            !stats.hit_cycle_cap,
            "must drain, ran {} cycles",
            stats.core_cycles
        );
        assert_eq!(stats.insts, wl.total_insts(2));
        assert!(stats.ipc > 0.0);
    }

    #[test]
    fn run_is_deterministic() {
        let wl = tiny_workload();
        let a = GpuSim::new(small_cfg(), &wl).run();
        let b = GpuSim::new(small_cfg(), &wl).run();
        assert_eq!(a.core_cycles, b.core_cycles);
        assert_eq!(a.insts, b.insts);
        assert_eq!(a.issue.total_stalls(), b.issue.total_stalls());
    }

    #[test]
    fn fixed_latency_model_drains() {
        let wl = tiny_workload();
        let mut cfg = small_cfg();
        cfg.memory_model = MemoryModel::FixedL1MissLatency(200);
        let stats = GpuSim::new(cfg, &wl).run();
        assert!(!stats.hit_cycle_cap);
        assert_eq!(stats.insts, wl.total_insts(2));
        // AML must reflect the configured latency.
        assert!(
            (stats.aml_core_cycles - 200.0).abs() < 10.0,
            "AML = {}",
            stats.aml_core_cycles
        );
    }

    #[test]
    fn lower_fixed_latency_is_faster() {
        let wl = tiny_workload();
        let mut fast_cfg = small_cfg();
        fast_cfg.memory_model = MemoryModel::FixedL1MissLatency(50);
        let mut slow_cfg = small_cfg();
        slow_cfg.memory_model = MemoryModel::FixedL1MissLatency(600);
        let fast = GpuSim::new(fast_cfg, &wl).run();
        let slow = GpuSim::new(slow_cfg, &wl).run();
        assert!(
            fast.ipc > slow.ipc,
            "fast {} must beat slow {}",
            fast.ipc,
            slow.ipc
        );
    }

    #[test]
    fn infinite_bw_model_drains_and_beats_baseline() {
        // A memory-heavy streaming slice: even two cores oversubscribe the
        // DRAM, so the congestion-free P∞ model must win clearly.
        let wl = WorkloadSpec {
            warps_per_core: 16,
            insts_per_warp: 600,
            mem_fraction: 0.7,
            mix: AddressMix::new(0.9, 0.05, 0.05),
            ..tiny_workload()
        };
        let mut cfg = small_cfg();
        cfg.memory_model = MemoryModel::InfiniteBw {
            l2_hit: 120,
            dram: 220,
        };
        let ideal = GpuSim::new(cfg, &wl).run();
        let base = GpuSim::new(small_cfg(), &wl).run();
        assert!(!ideal.hit_cycle_cap);
        assert!(
            ideal.ipc > base.ipc,
            "P∞ ({}) must beat the congested baseline ({})",
            ideal.ipc,
            base.ipc
        );
    }

    #[test]
    fn infinite_dram_model_drains() {
        let wl = tiny_workload();
        let mut cfg = small_cfg();
        cfg.memory_model = MemoryModel::InfiniteDram { latency: 100 };
        let stats = GpuSim::new(cfg, &wl).run();
        assert!(!stats.hit_cycle_cap);
        assert_eq!(stats.insts, wl.total_insts(2));
    }

    #[test]
    fn stats_fields_are_populated_on_full_model() {
        let wl = tiny_workload();
        let stats = GpuSim::new(small_cfg(), &wl).run();
        assert!(stats.core_cycles > 0);
        // Latency percentiles are ordered and bracket the mean.
        assert!(stats.aml_p50 <= stats.aml_p90);
        assert!(stats.aml_p90 <= stats.aml_p99);
        assert!(stats.aml_p99 > 0.0);
        assert!(
            stats.aml_p50 <= stats.aml_core_cycles * 1.5 + 50.0,
            "median ({}) wildly above mean ({})",
            stats.aml_p50,
            stats.aml_core_cycles
        );
        // The tiny workload misses in L1 (cold) so some AML samples exist.
        assert!(stats.aml_core_cycles > 0.0);
        assert!(stats.l1_miss_rate > 0.0 && stats.l1_miss_rate <= 1.0);
        assert!(stats.l2_access_occupancy.lifetime() > 0);
        assert!(stats.dram_queue_occupancy.lifetime() > 0);
        assert!(stats.dram_efficiency > 0.0 && stats.dram_efficiency <= 1.0);
    }

    #[test]
    fn ideal_delivery_skips_blocked_cores() {
        use gmh_types::{AccessKind, LineAddr};
        let wl = tiny_workload();
        let mut cfg = small_cfg();
        cfg.memory_model = MemoryModel::FixedL1MissLatency(10);
        let mut sim = GpuSim::new(cfg, &wl);
        // Saturate core 0's response FIFO.
        let mut id = 1000;
        while sim.core(0).can_accept_response() {
            let f = MemFetch::new(id, 0, 0, AccessKind::Load, LineAddr::new(id), 0);
            sim.core_mut(0).push_response(f).unwrap();
            id += 1;
        }
        // Ready responses in the shared queue: two for saturated core 0
        // ahead of two for idle core 1.
        for (id, core) in [(1, 0), (2, 0), (3, 1), (4, 1)] {
            let f = MemFetch::new(id, core, 0, AccessKind::Load, LineAddr::new(id), 0);
            sim.audit.emitted(&f);
            sim.ideal_fast.push_back((0, f));
        }
        sim.deliver_ideal(0, 0);
        assert_eq!(
            sim.core(1).response_fifo_len(),
            2,
            "idle core's ready responses must not be blocked behind a \
             saturated core's"
        );
        assert_eq!(sim.ideal_fast.len(), 2, "blocked core's responses stay");
        assert!(sim.ideal_fast.iter().all(|(_, f)| f.core_id == 0));
        assert_eq!(
            (sim.ideal_fast[0].1.id, sim.ideal_fast[1].1.id),
            (1, 2),
            "per-core order preserved"
        );
    }

    #[test]
    fn telemetry_series_are_populated_and_audit_balances() {
        let wl = tiny_workload();
        let stats = GpuSim::new(small_cfg(), &wl).run();
        let snap = &stats.telemetry;
        assert!(snap.window_cycles > 0);
        let names: Vec<&str> = snap.series.iter().map(|s| s.name.as_str()).collect();
        for expected in [
            "l1.miss_queue",
            "core.response_fifo",
            "icnt.req.flits_per_cycle",
            "icnt.rep.inject_flits",
            "l2.access_queue",
            "l2.miss_queue",
            "l2.response_queue",
            "l2.stall.bp_icnt",
            "l2.stall.bp_dram",
            "dram.sched_queue",
            "dram.response_queue",
        ] {
            assert!(names.contains(&expected), "missing series {expected}");
        }
        let lens: Vec<usize> = snap.series.iter().map(|s| s.points.len()).collect();
        assert!(lens[0] > 0, "series must have points");
        assert!(
            lens.iter().all(|&n| n == lens[0]),
            "sampled in lock-step: {lens:?}"
        );
        let l2q = snap
            .series
            .iter()
            .find(|s| s.name == "l2.access_queue")
            .unwrap();
        assert!(
            l2q.points.iter().any(|&p| p > 0.0),
            "a real run must exercise the L2 access queues"
        );
        assert!(stats.audit.emitted > 0);
        assert_eq!(
            stats.audit.emitted,
            stats.audit.returned + stats.audit.absorbed,
            "every emitted fetch must terminate exactly once"
        );
        assert_eq!(stats.audit.in_flight, 0);
    }

    #[test]
    fn tracing_does_not_change_simulation_results() {
        let wl = tiny_workload();
        let base = GpuSim::new(small_cfg(), &wl).run();
        let mut cfg = small_cfg();
        cfg.trace_sample = 2;
        let traced = GpuSim::new(cfg, &wl).run();
        assert_eq!(base.core_cycles, traced.core_cycles);
        assert_eq!(base.insts, traced.insts);
        assert_eq!(base.issue.total_stalls(), traced.issue.total_stalls());
        assert_eq!(base.audit.emitted, traced.audit.emitted);
        assert_eq!(base.l2_stalls.total(), traced.l2_stalls.total());
        assert!(base.trace.events.is_empty(), "tracing defaults off");
        assert!(!traced.trace.events.is_empty(), "sampled trace has events");
    }

    #[test]
    fn traced_full_run_decomposes_latency_per_level() {
        let wl = tiny_workload();
        let mut cfg = small_cfg();
        cfg.trace_sample = 1;
        let stats = GpuSim::new(cfg, &wl).run();
        let t = &stats.trace;
        assert!(t.sampled > 0);
        assert_eq!(t.skipped, 0, "denominator 1 samples every fetch");
        // Every fetch that misses the L1 queues at the L1 miss queue and at
        // the L2; the miss path exercises DRAM.
        for level in gmh_types::trace::Level::ALL {
            assert!(t.levels.contains_key(&level), "missing level {level:?}");
        }
        let l2 = &t.levels[&gmh_types::trace::Level::L2];
        assert!(
            l2.queueing.count() > 0,
            "a full-model run must observe L2 queueing"
        );
        let dram = &t.levels[&gmh_types::trace::Level::Dram];
        assert!(
            dram.service.count() > 0,
            "cold misses must observe DRAM service time"
        );
    }

    #[test]
    fn tracing_works_on_every_memory_model() {
        let wl = tiny_workload();
        for model in [
            MemoryModel::Full,
            MemoryModel::FixedL1MissLatency(120),
            MemoryModel::InfiniteBw {
                l2_hit: 120,
                dram: 220,
            },
            MemoryModel::InfiniteDram { latency: 100 },
        ] {
            let mut cfg = small_cfg();
            cfg.memory_model = model.clone();
            cfg.trace_sample = 2;
            let stats = GpuSim::new(cfg, &wl).run();
            assert!(
                !stats.trace.events.is_empty(),
                "model {model:?} produced no trace events"
            );
        }
    }

    #[test]
    fn real_catalog_workload_runs_on_two_cores() {
        let mut wl = catalog::by_name("nn").unwrap();
        wl.insts_per_warp = 100;
        wl.warps_per_core = 8;
        let stats = GpuSim::new(small_cfg(), &wl).run();
        assert!(!stats.hit_cycle_cap, "nn slice must drain");
        assert!(stats.ipc > 0.0);
    }
}
