//! Full-GPU configuration and the paper's design-space presets (Table III).

use gmh_cache::CacheConfig;
use gmh_dram::DramConfig;
use gmh_icnt::IcntConfig;
use gmh_simt::CoreConfig;

/// How the memory system below the L1 behaves.
#[derive(Clone, Debug, PartialEq)]
pub enum MemoryModel {
    /// The full hierarchy: crossbar + banked L2 + GDDR5 channels.
    Full,
    /// Every L1 miss returns after a fixed number of core cycles, with no
    /// bandwidth limits anywhere (the Fig. 3 latency-sweep apparatus).
    FixedL1MissLatency(u64),
    /// Infinite-bandwidth memory system (Table II's P∞): L1 misses return
    /// in `l2_hit` core cycles when a functional L2 would hit, `dram` when
    /// it would miss. No congestion anywhere.
    InfiniteBw {
        /// Uncongested L2 round trip in core cycles (the paper uses 120).
        l2_hit: u64,
        /// Uncongested DRAM round trip in core cycles (the paper uses 220).
        dram: u64,
    },
    /// Real cache hierarchy and interconnect, but DRAM replaced by an
    /// infinite-bandwidth pipe with a fixed latency in core cycles
    /// (Table II's P_DRAM; the paper uses 100).
    InfiniteDram {
        /// DRAM access latency in core cycles.
        latency: u64,
    },
}

/// Complete configuration of the simulated GPU.
#[derive(Clone, Debug)]
pub struct GpuConfig {
    /// Number of SIMT cores (SMs).
    pub n_cores: usize,
    /// Core clock in MHz.
    pub core_mhz: u32,
    /// Crossbar + L2 clock in MHz.
    pub icnt_mhz: u32,
    /// DRAM command clock in MHz.
    pub dram_mhz: u32,
    /// Per-core configuration (L1 caches, memory pipeline, warps).
    pub core: CoreConfig,
    /// Crossbar configuration.
    pub icnt: IcntConfig,
    /// Number of L2 banks (each with an independent crossbar port).
    pub n_l2_banks: usize,
    /// Per-bank L2 configuration; `size_bytes` is per bank and
    /// `miss_queue_len` is the paper's "L2 miss queue".
    pub l2_bank: CacheConfig,
    /// L2 access-queue depth per bank (requests buffered from the
    /// crossbar; the queue Fig. 4 measures).
    pub l2_access_queue: usize,
    /// L2 response-queue depth per bank (replies buffered toward the
    /// crossbar).
    pub l2_response_queue: usize,
    /// L2 data-port width in bytes per L2 cycle.
    pub l2_data_port_bytes: u32,
    /// L2 lookup pipeline latency in L2 (icnt-domain) cycles.
    pub l2_latency: u64,
    /// Number of DRAM channels (memory partitions).
    pub n_channels: usize,
    /// Per-channel DRAM configuration.
    pub dram: DramConfig,
    /// Memory model (full hierarchy or an ideal variant).
    pub memory_model: MemoryModel,
    /// Safety cap on simulated core cycles.
    pub max_core_cycles: u64,
    /// Telemetry aggregation window in interconnect cycles: queue
    /// occupancies, stall causes and flit rates are averaged over windows
    /// of this width and exported as time series in
    /// [`crate::SimStats::telemetry`].
    pub telemetry_window: u64,
    /// Per-fetch lifecycle tracing: sample 1-in-N core-emitted fetches
    /// into [`crate::SimStats::trace`] (0 disables tracing entirely; the
    /// disabled path costs one branch per event site). Sampling decisions
    /// are seeded from the workload seed, so traces are deterministic.
    pub trace_sample: u64,
    /// Hard cap on recorded trace events (bounds trace memory; events past
    /// the cap are counted as dropped). Must be non-zero when
    /// `trace_sample` is.
    pub trace_event_cap: u64,
    /// Disables the idle-phase fast-forward scheduler: every clock edge is
    /// stepped naively. The fast-forward path is bit-identical by
    /// construction; this switch exists so equivalence tests (and
    /// benchmark overhead measurements) can run the reference loop.
    pub force_naive_loop: bool,
    /// Times every run-loop phase (core/icnt/dram/telemetry/fast-forward)
    /// with wall-clock timers so `sim-bench` can report a per-phase
    /// breakdown. Off by default: the timed dispatch adds two `Instant`
    /// reads per tick, which would distort the headline throughput numbers.
    /// Simulation results are identical either way.
    pub profile_phases: bool,
    /// Host-side span profiler: records wall-clock spans for every run-loop
    /// phase and every `ParPool` worker lane into a
    /// [`gmh_types::prof::HostReport`] (fetch it with
    /// `GpuSim::take_host_report` after the run). Strictly observational —
    /// simulation results are byte-identical with this on or off, which the
    /// determinism suite pins. Takes precedence over `profile_phases` when
    /// both are set (the host profiler subsumes the per-phase breakdown).
    /// Off by default; the cache key ignores it.
    pub profile_host: bool,
    /// Forces the single-shard serial scheduler regardless of
    /// `sim_threads` / `GMH_THREADS`: the equivalence oracle for the
    /// parallel path (the parallel scheduler is bit-identical by
    /// construction; this switch pins the reference side of that claim in
    /// tests and benchmarks).
    pub force_serial: bool,
    /// Worker threads for the parallel scheduler: the machine is sharded
    /// into this many tick domains (SM clusters, L2-bank partitions, DRAM
    /// channel groups) advancing in lock-step with deterministic merges.
    /// `0` defers to the `GMH_SIM_THREADS` / `GMH_THREADS` environment
    /// variables (in that order), defaulting to 1 (serial). Clamped to the
    /// machine's shardable width at run time.
    pub sim_threads: usize,
}

impl GpuConfig {
    /// The baseline simulated GTX 480 (Table I).
    pub fn gtx480_baseline() -> Self {
        GpuConfig {
            n_cores: 15,
            core_mhz: 1400,
            icnt_mhz: 700,
            dram_mhz: 924,
            core: CoreConfig::gtx480(),
            icnt: IcntConfig::baseline_32_32(),
            n_l2_banks: 12,
            l2_bank: CacheConfig::fermi_l2_bank(),
            l2_access_queue: 8,
            l2_response_queue: 8,
            l2_data_port_bytes: 32,
            l2_latency: 40,
            n_channels: 6,
            dram: DramConfig::gtx480(),
            memory_model: MemoryModel::Full,
            max_core_cycles: 3_000_000,
            telemetry_window: 512,
            trace_sample: 0,
            trace_event_cap: 65_536,
            force_naive_loop: false,
            profile_phases: false,
            profile_host: false,
            force_serial: false,
            sim_threads: 0,
        }
    }

    /// Validates cross-component consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_cores == 0 {
            return Err("need at least one core".into());
        }
        if self.n_l2_banks == 0 || !self.n_l2_banks.is_multiple_of(self.n_channels) {
            return Err(format!(
                "L2 banks ({}) must be a positive multiple of channels ({})",
                self.n_l2_banks, self.n_channels
            ));
        }
        if self.dram.n_channels != self.n_channels {
            return Err("dram.n_channels must match n_channels".into());
        }
        if self.l2_bank.set_stride != self.n_l2_banks {
            return Err("l2_bank.set_stride must equal n_l2_banks".into());
        }
        if self.telemetry_window == 0 {
            return Err("telemetry_window must be non-zero".into());
        }
        if self.trace_sample > 0 && self.trace_event_cap == 0 {
            return Err("trace_event_cap must be non-zero when trace_sample is set".into());
        }
        self.dram.timing.validate()
    }

    // ---- Table III design-space knobs (4x scaled column) -------------------

    /// Scales the L1 Type '='/'+' parameters by `f` (Table III group c):
    /// L1 miss queue, L1D MSHRs, memory pipeline width.
    pub fn scale_l1(mut self, f: usize) -> Self {
        self.core.l1d.miss_queue_len *= f;
        self.core.l1d.mshr_entries *= f;
        self.core.l1d.mshr_merge *= f;
        self.core.mem_pipeline_width *= f;
        self
    }

    /// Scales the L2 parameters by `f` (Table III group b): miss queue,
    /// response queue, MSHRs, access queue, data port, crossbar flit sizes
    /// and bank count (total L2 capacity unchanged).
    pub fn scale_l2(mut self, f: usize) -> Self {
        // INVARIANT: scale factors come from the experiment grid (small
        // powers of two), far below u32::MAX.
        let fw = u32::try_from(f).expect("scale factor fits u32");
        self.l2_bank.miss_queue_len *= f;
        self.l2_response_queue *= f;
        self.l2_bank.mshr_entries *= f;
        self.l2_bank.mshr_merge *= f;
        self.l2_access_queue *= f;
        self.l2_data_port_bytes *= fw;
        self.icnt.req_flit_bytes *= fw;
        self.icnt.rep_flit_bytes *= fw;
        // More banks, same total capacity: per-bank size shrinks.
        self.l2_bank.size_bytes /= f as u64;
        self.n_l2_banks *= f;
        self.l2_bank.set_stride = self.n_l2_banks;
        self
    }

    /// Scales the DRAM parameters by `f` (Table III group a): scheduler
    /// queue, banks per chip (capacity constant) and bus width. At `f = 4`
    /// this matches the bandwidth of an HBM stack, which the paper uses as
    /// its HBM stand-in.
    pub fn scale_dram(mut self, f: usize) -> Self {
        self.dram.sched_queue *= f;
        self.dram.response_queue *= f;
        self.dram.n_banks *= f;
        // INVARIANT: scale factors come from the experiment grid (small
        // powers of two), far below u32::MAX.
        self.dram.bus_bytes_per_cycle *= u32::try_from(f).expect("scale factor fits u32");
        self
    }

    /// The paper's HBM-class memory: baseline cache hierarchy with 4×
    /// DRAM bandwidth (Fig. 10 "DRAM", Fig. 12 "HBM").
    pub fn hbm() -> Self {
        Self::gtx480_baseline().scale_dram(4)
    }

    // ---- cost-effective configurations (Table III last column) -------------

    /// Shared non-crossbar part of the cost-effective configuration:
    /// 32-entry L1/L2 miss queues, 48 L1 MSHRs, 32-entry L2 access and
    /// response queues, 40-wide memory pipeline. DRAM and L2 data port stay
    /// at baseline.
    fn cost_effective_base() -> Self {
        let mut c = Self::gtx480_baseline();
        c.core.l1d.miss_queue_len = 32;
        c.core.l1d.mshr_entries = 48;
        c.core.mem_pipeline_width = 40;
        c.l2_bank.miss_queue_len = 32;
        c.l2_response_queue = 32;
        c.l2_access_queue = 32;
        c
    }

    /// Cost-effective `16+48`: asymmetric crossbar with the same total
    /// wire count as the baseline `32+32` (zero wire-area overhead).
    pub fn cost_effective_16_48() -> Self {
        let mut c = Self::cost_effective_base();
        c.icnt = IcntConfig::asymmetric(16, 48);
        c
    }

    /// Cost-effective `16+68`: 20 extra reply bytes of point-to-point width.
    pub fn cost_effective_16_68() -> Self {
        let mut c = Self::cost_effective_base();
        c.icnt = IcntConfig::asymmetric(16, 68);
        c
    }

    /// Cost-effective `32+52`: 20 extra reply bytes, wider request network.
    pub fn cost_effective_32_52() -> Self {
        let mut c = Self::cost_effective_base();
        c.icnt = IcntConfig::asymmetric(32, 52);
        c
    }

    // ---- ideal-memory models ------------------------------------------------

    /// Table II's P∞ apparatus: infinite-bandwidth memory system with the
    /// paper's uncongested latencies (120 cycles to L2, 220 to DRAM).
    pub fn infinite_bw() -> Self {
        let mut c = Self::gtx480_baseline();
        c.memory_model = MemoryModel::InfiniteBw {
            l2_hit: 120,
            dram: 220,
        };
        c
    }

    /// Table II's P_DRAM apparatus: baseline cache hierarchy with an
    /// infinite-bandwidth, 100-cycle DRAM.
    pub fn infinite_dram() -> Self {
        let mut c = Self::gtx480_baseline();
        c.memory_model = MemoryModel::InfiniteDram { latency: 100 };
        c
    }

    /// Fig. 3's apparatus: every L1 miss returns after exactly `latency`
    /// core cycles.
    pub fn fixed_l1_miss_latency(latency: u64) -> Self {
        let mut c = Self::gtx480_baseline();
        c.memory_model = MemoryModel::FixedL1MissLatency(latency);
        c
    }

    /// Fig. 11's apparatus: the baseline with a different core clock.
    /// Raising the core clock raises the L1 request rate against a fixed
    /// L2/DRAM bandwidth, mimicking the real-chip overclocking experiment.
    pub fn with_core_mhz(mut self, mhz: u32) -> Self {
        self.core_mhz = mhz;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let c = GpuConfig::gtx480_baseline();
        assert_eq!(c.n_cores, 15);
        assert_eq!(c.core_mhz, 1400);
        assert_eq!(c.icnt_mhz, 700);
        assert_eq!(c.dram_mhz, 924);
        assert_eq!(c.n_l2_banks, 12);
        assert_eq!(c.n_channels, 6);
        assert_eq!(c.l2_bank.size_bytes * c.n_l2_banks as u64, 768 * 1024);
        assert_eq!(c.core.l1d.size_bytes, 16 * 1024);
        assert_eq!(c.core.l1d.mshr_entries, 32);
        assert_eq!(c.core.l1d.miss_queue_len, 8);
        assert_eq!(c.icnt.req_flit_bytes, 32);
        assert_eq!(c.dram.sched_queue, 16);
        assert_eq!(c.dram.n_banks, 16);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scale_l1_matches_table3() {
        let c = GpuConfig::gtx480_baseline().scale_l1(4);
        assert_eq!(c.core.l1d.miss_queue_len, 32);
        assert_eq!(c.core.l1d.mshr_entries, 128);
        assert_eq!(c.core.mem_pipeline_width, 40);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scale_l2_matches_table3() {
        let c = GpuConfig::gtx480_baseline().scale_l2(4);
        assert_eq!(c.l2_bank.miss_queue_len, 32);
        assert_eq!(c.l2_response_queue, 32);
        assert_eq!(c.l2_bank.mshr_entries, 128);
        assert_eq!(c.l2_access_queue, 32);
        assert_eq!(c.l2_data_port_bytes, 128);
        assert_eq!(c.icnt.req_flit_bytes, 128);
        assert_eq!(c.icnt.rep_flit_bytes, 128);
        assert_eq!(c.n_l2_banks, 48);
        // Total L2 capacity unchanged.
        assert_eq!(c.l2_bank.size_bytes * c.n_l2_banks as u64, 768 * 1024);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scale_dram_matches_table3() {
        let c = GpuConfig::gtx480_baseline().scale_dram(4);
        assert_eq!(c.dram.sched_queue, 64);
        assert_eq!(c.dram.n_banks, 64);
        assert_eq!(c.dram.bus_bytes_per_cycle, 128);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cost_effective_matches_table3() {
        let c = GpuConfig::cost_effective_16_48();
        assert_eq!(c.dram.sched_queue, 16, "DRAM stays at baseline");
        assert_eq!(c.l2_bank.miss_queue_len, 32);
        assert_eq!(c.l2_response_queue, 32);
        assert_eq!(c.l2_bank.mshr_entries, 32, "L2 MSHRs stay at baseline");
        assert_eq!(c.l2_access_queue, 32);
        assert_eq!(c.l2_data_port_bytes, 32, "L2 port stays at baseline");
        assert_eq!((c.icnt.req_flit_bytes, c.icnt.rep_flit_bytes), (16, 48));
        assert_eq!(c.n_l2_banks, 12, "L2 banks stay at baseline");
        assert_eq!(c.core.l1d.miss_queue_len, 32);
        assert_eq!(c.core.l1d.mshr_entries, 48);
        assert_eq!(c.core.mem_pipeline_width, 40);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn other_crossbar_variants() {
        assert_eq!(
            (
                GpuConfig::cost_effective_16_68().icnt.req_flit_bytes,
                GpuConfig::cost_effective_16_68().icnt.rep_flit_bytes
            ),
            (16, 68)
        );
        assert_eq!(
            (
                GpuConfig::cost_effective_32_52().icnt.req_flit_bytes,
                GpuConfig::cost_effective_32_52().icnt.rep_flit_bytes
            ),
            (32, 52)
        );
    }

    #[test]
    fn synergistic_combos_compose() {
        let c = GpuConfig::gtx480_baseline().scale_l1(4).scale_l2(4);
        assert_eq!(c.core.l1d.mshr_entries, 128);
        assert_eq!(c.n_l2_banks, 48);
        assert!(c.validate().is_ok());
        let c = GpuConfig::gtx480_baseline().scale_l2(4).scale_dram(4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn ideal_models() {
        assert!(matches!(
            GpuConfig::infinite_bw().memory_model,
            MemoryModel::InfiniteBw {
                l2_hit: 120,
                dram: 220
            }
        ));
        assert!(matches!(
            GpuConfig::infinite_dram().memory_model,
            MemoryModel::InfiniteDram { latency: 100 }
        ));
        assert!(matches!(
            GpuConfig::fixed_l1_miss_latency(400).memory_model,
            MemoryModel::FixedL1MissLatency(400)
        ));
    }

    #[test]
    fn validation_rejects_bank_channel_mismatch() {
        let mut c = GpuConfig::gtx480_baseline();
        c.n_l2_banks = 7;
        c.l2_bank.set_stride = 7;
        assert!(c.validate().is_err());
    }

    #[test]
    fn core_mhz_override() {
        let c = GpuConfig::gtx480_baseline().with_core_mhz(1600);
        assert_eq!(c.core_mhz, 1600);
    }

    #[test]
    fn tracing_defaults_off_and_validates_cap() {
        let c = GpuConfig::gtx480_baseline();
        assert_eq!(c.trace_sample, 0, "tracing is opt-in");
        assert!(c.trace_event_cap > 0);
        let mut c = GpuConfig::gtx480_baseline();
        c.trace_sample = 16;
        assert!(c.validate().is_ok());
        c.trace_event_cap = 0;
        assert!(c.validate().is_err(), "sampling needs a non-zero cap");
    }
}
