//! Conservativeness proptests for every `next_event_bound` implementor.
//!
//! The contract ([`gmh_types::EventBound`]): a component answering
//! `QuietUntil { bound }` is *inert* on every own-domain tick strictly
//! below `bound` — apart from the constant per-cycle bookkeeping its bulk
//! skip hook reproduces. These tests drive each component with random
//! traffic, and whenever a probe promises a quiet window they fork the
//! component: one copy lives through the window cycle by cycle, the other
//! takes the `skip_cycles`/`skip_idle` shortcut. The two must end in
//! equal observable state (`Debug` covers every field on the derived
//! impls), which is exactly the property that makes the event-driven run
//! loop bit-identical to the one-tick oracle.

use gmh_cache::CacheConfig;
use gmh_core::L2Bank;
use gmh_dram::{DramChannel, DramConfig};
use gmh_icnt::Network;
use gmh_simt::inst::{Inst, InstSource};
use gmh_simt::{CoreConfig, CoreIdleProbe, SimtCore};
use gmh_types::{AccessKind, EventBound, LineAddr, MemFetch};
use proptest::prelude::*;

fn load(id: u64, line: u64) -> MemFetch {
    MemFetch::new(id, 0, 0, AccessKind::Load, LineAddr::new(line), 0)
}

/// The widest in-window skip the probe licenses from tick count `done`:
/// ticks `done + 1 ..= bound - 1` are promised inert.
fn window(done: u64, bound: Option<u64>) -> Option<u64> {
    let b = bound?;
    (b > done + 1).then(|| b - 1 - done)
}

proptest! {
    /// Crossbar: skipping a promised-quiet window is indistinguishable
    /// from living through it. Windows open while injected packets sit
    /// out their router latency.
    #[test]
    fn network_quiet_window_matches_cycling(
        pkts in prop::collection::vec((0usize..4, 0usize..3, 1u32..256), 1..12),
        pre in 0u64..4,
        latency in 2u64..30,
    ) {
        let mut net = Network::new(4, 3, 32, 64, 8, latency);
        let mut now = 0u64;
        for (i, (src, dst, bytes)) in pkts.iter().enumerate() {
            let _ = net.inject(*src, *dst, load(i as u64, i as u64), *bytes);
            for _ in 0..pre {
                net.cycle();
                now += 1;
            }
            let EventBound::QuietUntil { bound } = net.next_event_bound() else {
                continue;
            };
            let Some(k) = window(now, bound) else { continue };
            let mut lived = net.clone();
            let mut skipped = net.clone();
            for _ in 0..k {
                lived.cycle();
            }
            skipped.skip_cycles(k);
            // One real cycle at tick `bound` normalizes the per-cycle
            // arbitration scratch (overwritten before use, so it carries
            // no state across cycles) and checks both copies act
            // identically at the wake tick.
            lived.cycle();
            skipped.cycle();
            prop_assert_eq!(format!("{lived:?}"), format!("{skipped:?}"));
            // Drain the ejection side so buffers keep turning over.
            for d in 0..3 {
                let _ = net.pop_eject(d);
            }
        }
    }

    /// DRAM channel: quiet windows open while queued requests wait out
    /// their visibility latency and bursts fly through the banks.
    #[test]
    fn dram_quiet_window_matches_cycling(
        reqs in prop::collection::vec((any::<bool>(), 0u64..(1 << 12)), 1..20),
        pre in 0u64..6,
    ) {
        let mut ch = DramChannel::new(DramConfig::gtx480(), 0);
        let mut now = 0u64;
        for (i, (is_write, l)) in reqs.iter().enumerate() {
            let line = l * 6; // route to channel 0
            let kind = if *is_write { AccessKind::Store } else { AccessKind::Load };
            let f = MemFetch::new(i as u64, 0, 0, kind, LineAddr::new(line), 0);
            if ch.can_accept() {
                ch.push(f, now).unwrap();
            }
            for _ in 0..pre {
                ch.cycle(now);
                now += 1;
                let _ = ch.pop_response();
            }
            let EventBound::QuietUntil { bound } = ch.next_event_bound(now) else {
                continue;
            };
            let Some(k) = window(now, bound) else { continue };
            let mut lived = ch.clone();
            let mut skipped = ch.clone();
            for j in 0..k {
                lived.cycle(now + j);
            }
            skipped.skip_cycles(k, now);
            prop_assert_eq!(format!("{lived:?}"), format!("{skipped:?}"));
        }
    }

    /// L2 bank: quiet windows open while a parked response waits for its
    /// pipeline-release cycle.
    #[test]
    fn l2bank_quiet_window_matches_cycling(
        lines in prop::collection::vec(0u64..64, 1..12),
        lat in 1u64..12,
        pre in 0u64..3,
    ) {
        let mut bank = L2Bank::new(CacheConfig::fermi_l2_bank(), 8, 8, 128, lat);
        let mut now = 0u64;
        for (i, l) in lines.iter().enumerate() {
            let _ = bank.push_access(load(i as u64, *l));
            for _ in 0..(pre + 1) {
                bank.cycle(now * 1000);
                now += 1;
            }
            let EventBound::QuietUntil { bound } = bank.next_event_bound() else {
                continue;
            };
            let Some(k) = window(now, bound) else { continue };
            let mut lived = bank.clone();
            let mut skipped = bank.clone();
            for j in 0..k {
                lived.cycle((now + j) * 1000);
            }
            skipped.skip_cycles(k);
            prop_assert_eq!(format!("{lived:?}"), format!("{skipped:?}"));
            let _ = bank.pop_response();
        }
    }
}

/// A deterministic pure-ALU stream: chained dependences at `latency`, so
/// the issue stage stalls on data-ALU hazards and the probe opens bounded
/// quiet windows (`bound = alu_ready_at`).
struct ChainSource {
    per_warp: u64,
    latency: u32,
}

impl InstSource for ChainSource {
    fn next_inst(&mut self, _warp: usize) -> Option<Inst> {
        if self.per_warp == 0 {
            return None;
        }
        self.per_warp -= 1;
        Some(Inst::alu(self.latency).after_alu())
    }

    fn code_lines(&self) -> u64 {
        1
    }
}

/// Zero-latency instruction memory: every I-miss is served the moment it
/// would inject into the interconnect. Applied identically to both the
/// lived-through and the post-skip core, so divergence can only come from
/// the skip hook itself.
fn serve_imisses(core: &mut SimtCore) {
    while let Some(f) = core.pop_outgoing() {
        core.push_response(f).expect("response fifo has room");
    }
}

proptest! {
    /// SIMT core: living through an ALU-dependence window equals
    /// `skip_idle` over it — clock, issue counts, and the per-cycle stall
    /// attribution all match (`skip_idle` replays the stall class the
    /// probe captured). Cores are not `Clone` (they own a boxed
    /// instruction source), so two identically-constructed cores are
    /// driven in lock-step instead of forked.
    #[test]
    fn core_quiet_window_matches_skip_idle(
        latency in 2u32..120,
        insts in 2u64..12,
        drive in 1u64..5,
    ) {
        let cfg = CoreConfig {
            max_warps: 2,
            ..CoreConfig::gtx480()
        };
        let mk = || {
            SimtCore::new(
                0,
                cfg.clone(),
                Box::new(ChainSource { per_warp: insts, latency }),
            )
        };
        let mut lived = mk();
        let mut skipped = mk();
        let mut now = 0u64;
        for _ in 0..200 {
            if lived.done() {
                break;
            }
            for _ in 0..drive {
                lived.cycle(now * 714);
                skipped.cycle(now * 714);
                now += 1;
                serve_imisses(&mut lived);
                serve_imisses(&mut skipped);
            }
            let probe = lived.next_event_bound();
            let CoreIdleProbe::Quiet { bound, stall } = probe else {
                continue;
            };
            prop_assert_eq!(probe, skipped.next_event_bound(), "lock-step cores agree");
            let Some(k) = window(now, bound) else { continue };
            for j in 0..k {
                lived.cycle((now + j) * 714);
            }
            skipped.skip_idle(k, stall);
            now += k;
            prop_assert_eq!(format!("{lived:?}"), format!("{skipped:?}"));
            prop_assert_eq!(
                format!("{:?}", lived.stats()),
                format!("{:?}", skipped.stats())
            );
        }
    }
}
