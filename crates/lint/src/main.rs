//! CLI for the gmh static-analysis pass.
//!
//! Usage: `cargo run -p gmh-lint -- --workspace [--root PATH] [--json]`
//!
//! `--workspace` runs the eight rules plus the suppression audit (the
//! audit is the default; `--audit-allows` names it explicitly). `--json`
//! streams one JSON object per finding to stdout (line-delimited) while
//! the human rendering goes to stderr, so CI can archive the machine
//! output and still show readable logs.
//!
//! Exits 0 when the tree is clean, 1 when there are findings, 2 on usage
//! or configuration errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut workspace = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            // The suppression audit always runs with --workspace; the flag
            // exists so invocations can state the intent explicitly.
            "--audit-allows" => {}
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage("pass --workspace to lint the tree");
    }
    // `cargo run -p gmh-lint` runs from the workspace root; fall back to
    // walking up from the crate dir when invoked from elsewhere.
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        if cwd.join("lint.toml").exists() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .canonicalize()
                .unwrap_or(cwd)
        }
    });

    match gmh_lint::run_workspace(&root) {
        Ok((findings, files_scanned)) => {
            let human = gmh_lint::render(&findings, files_scanned);
            if json {
                print!("{}", gmh_lint::render_json(&root, &findings));
                eprint!("{human}");
            } else {
                print!("{human}");
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("gmh-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: gmh-lint --workspace [--root PATH] [--json] [--audit-allows]";

fn usage(msg: &str) -> ExitCode {
    eprintln!("gmh-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
