//! `gmh-lint`: in-tree static analysis enforcing the simulator's
//! accounting invariants.
//!
//! The paper's methodology (Dublish et al., ISPASS 2017) stands on two
//! bookkeeping properties — every stall cycle charged to exactly one cause
//! in a fixed priority order, and every fetch flowing through bounded
//! queues that exert back-pressure. PR 1 added the *runtime* audit
//! (fetch conservation); this crate is the *static* layer that catches
//! violations at review time. Six rules:
//!
//! - **R1 determinism** — no `HashMap`/`HashSet`, wall-clock time, or
//!   unseeded RNG in model crates ([`rules::determinism`]);
//! - **R2 bounded queues** — no raw `VecDeque` outside
//!   `gmh_types::queue` ([`rules::queues`]);
//! - **R3 cast safety** — narrowing `as` casts need `try_from` or a
//!   written justification ([`rules::casts`]);
//! - **R4 panic hygiene** — `.unwrap()`/`.expect()` need an
//!   `// INVARIANT:` comment ([`rules::panics`]);
//! - **R5 stall-attribution exhaustiveness** — every stall variant
//!   attributed exactly once, in paper-precedence order
//!   ([`rules::stalls`]);
//! - **R6 zero-allocation hot loops** — no `vec![..]`, `Vec::new()`,
//!   `Box::new()` or `.collect()` inside the per-cycle functions of model
//!   crates ([`rules::alloc`]).
//!
//! Deliberately dependency-free (no `syn`, no `toml`): the build
//! environment is offline, so the scanner works on a masked lexical view
//! of the source ([`source::SourceFile`]) and a hand-rolled TOML subset
//! ([`config::LintConfig`]). Suppression is always written down: inline
//! `// lint: allow(Rn): reason` for single sites, `[[allow]]` entries in
//! `lint.toml` (with a mandatory `reason`) for structural exceptions.

pub mod config;
pub mod rules;
pub mod source;

use std::fmt;
use std::path::{Path, PathBuf};

pub use config::LintConfig;
pub use source::SourceFile;

/// One rule violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule id (`"R1"`..`"R6"`).
    pub rule: &'static str,
    /// Repo-relative, `/`-separated path.
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            out,
            "{}:{}: [{}] {}\n    fix: {}",
            self.path, self.line, self.rule, self.message, self.hint
        )
    }
}

/// Whether `path` lies in one of the configured model crates.
pub(crate) fn in_model_crate(cfg: &LintConfig, path: &str) -> bool {
    cfg.model_crates
        .iter()
        .any(|c| path.contains(&format!("crates/{c}/src/")))
}

/// Runs all rules over already-parsed files. This is the engine the
/// fixture tests drive directly.
pub fn run(cfg: &LintConfig, files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        rules::determinism::check(cfg, f, &mut findings);
        rules::queues::check(cfg, f, &mut findings);
        rules::casts::check(cfg, f, &mut findings);
        rules::panics::check(cfg, f, &mut findings);
        rules::alloc::check(cfg, f, &mut findings);
    }
    rules::stalls::check(cfg, files, &mut findings);

    // Central allowlist: match on (rule, path suffix, raw line text).
    findings.retain(|fd| {
        let text = files
            .iter()
            .find(|f| f.path == fd.path)
            .map_or("", |f| f.line(fd.line.saturating_sub(1)));
        !cfg.is_allowed(fd.rule, &fd.path, text)
    });
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings
}

/// Loads `lint.toml` at `root`, scans the workspace sources, and runs the
/// rules. Returns the findings plus the number of files scanned.
///
/// # Errors
///
/// I/O failures and config parse errors are reported as strings; a missing
/// `lint.toml` is an error (the linter refuses to run unconfigured).
pub fn run_workspace(root: &Path) -> Result<(Vec<Finding>, usize), String> {
    let cfg_path = root.join("lint.toml");
    let cfg_text = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = LintConfig::parse(&cfg_text)?;

    let mut paths = Vec::new();
    let crates_dir = root.join("crates");
    for entry in read_dir_sorted(&crates_dir)? {
        let src = entry.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut paths)?;
        }
    }
    // The root `gmh` facade crate.
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut paths)?;
    }
    paths.sort();

    let mut files = Vec::with_capacity(paths.len());
    for p in &paths {
        let text =
            std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile::parse(&rel, &text));
    }
    let n = files.len();
    Ok((run(&cfg, &files), n))
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut entries = Vec::new();
    let iter =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in iter {
        entries.push(
            entry
                .map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?
                .path(),
        );
    }
    entries.sort();
    Ok(entries)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for p in read_dir_sorted(dir)? {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Renders findings plus a one-line summary.
#[must_use]
pub fn render(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str(&format!(
            "gmh-lint: clean — {files_scanned} files, 6 rules, 0 findings\n"
        ));
    } else {
        out.push_str(&format!(
            "gmh-lint: {} finding(s) across {files_scanned} files\n",
            findings.len()
        ));
    }
    out
}
