//! `gmh-lint`: in-tree static analysis enforcing the simulator's
//! accounting invariants.
//!
//! The paper's methodology (Dublish et al., ISPASS 2017) stands on two
//! bookkeeping properties — every stall cycle charged to exactly one cause
//! in a fixed priority order, and every fetch flowing through bounded
//! queues that exert back-pressure. PR 1 added the *runtime* audit
//! (fetch conservation); this crate is the *static* layer that catches
//! violations at review time. Nine rules:
//!
//! - **R1 determinism** — no `HashMap`/`HashSet`, wall-clock time, or
//!   unseeded RNG in model crates ([`rules::determinism`]);
//! - **R2 bounded queues** — no raw `VecDeque` outside
//!   `gmh_types::queue` ([`rules::queues`]);
//! - **R3 cast safety** — narrowing `as` casts need `try_from` or a
//!   written justification ([`rules::casts`]);
//! - **R4 panic hygiene** — `.unwrap()`/`.expect()` need an
//!   `// INVARIANT:` comment ([`rules::panics`]);
//! - **R5 stall-attribution exhaustiveness** — every stall variant
//!   attributed exactly once, in paper-precedence order
//!   ([`rules::stalls`]);
//! - **R6 zero-allocation hot loops** — no `vec![..]`, `Vec::new()`,
//!   `Box::new()` or `.collect()` inside the per-cycle functions of model
//!   crates ([`rules::alloc`]);
//! - **R7 shard isolation** — nothing reachable from the shard-state root
//!   (through field types or the call graph) may share, spawn, or alias
//!   across the `collect()` barrier ([`rules::shards`]);
//! - **R8 time-unit consistency** — `_ps`/`_cycles`/`_ticks` unit classes
//!   never mix without a sanctioned `ClockDomains` conversion, and magic
//!   time literals stay in config files ([`rules::units`]);
//! - **R9 event-bound completeness** — a model file exposing a
//!   `next_event_bound` idle probe must implement the matching
//!   `skip_cycles`/`skip_idle` bulk-replay hook ([`rules::events`]).
//!
//! R7 and R8 are *symbol-resolved*: they run over a workspace-wide item
//! index ([`index::ItemIndex`] — types with fields, functions with
//! signatures, a conservative call graph) and a per-function dataflow
//! pass ([`dataflow::FnFlow`] — bindings, channel endpoints, use sites),
//! all still built on the masked lexical view.
//!
//! On top of the rules sits the suppression audit ([`audit`]): the rules
//! run unfiltered first, and every `[[allow]]` entry or inline directive
//! that no longer suppresses a real finding is itself reported (rule
//! `AUDIT`, unsuppressable).
//!
//! Deliberately dependency-free (no `syn`, no `toml`): the build
//! environment is offline, so the scanner works on a masked lexical view
//! of the source ([`source::SourceFile`]) and a hand-rolled TOML subset
//! ([`config::LintConfig`]). Suppression is always written down: inline
//! `// lint: allow(Rn): reason` for single sites, `[[allow]]` entries in
//! `lint.toml` (with a mandatory `reason`) for structural exceptions.

pub mod audit;
pub mod config;
pub mod dataflow;
pub mod index;
pub mod rules;
pub mod source;

use std::fmt;
use std::path::{Path, PathBuf};

pub use config::LintConfig;
pub use source::SourceFile;

/// One rule violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule id (`"R1"`..`"R6"`).
    pub rule: &'static str,
    /// Repo-relative, `/`-separated path.
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            out,
            "{}:{}: [{}] {}\n    fix: {}",
            self.path, self.line, self.rule, self.message, self.hint
        )
    }
}

/// Whether `path` lies in one of the configured model crates.
pub(crate) fn in_model_crate(cfg: &LintConfig, path: &str) -> bool {
    cfg.model_crates
        .iter()
        .any(|c| path.contains(&format!("crates/{c}/src/")))
}

/// Runs all rules over already-parsed files with **no suppression
/// applied** — the raw findings the audit measures allowlists against.
/// (R5 is the one exception: it honors inline directives while collecting
/// stall mentions, because a suppressed mention must not count toward its
/// single-site and ordering checks.)
pub fn run_raw(cfg: &LintConfig, files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let idx = index::ItemIndex::build(files);
    for f in files {
        rules::determinism::check(cfg, f, &mut findings);
        rules::queues::check(cfg, f, &mut findings);
        rules::casts::check(cfg, f, &mut findings);
        rules::panics::check(cfg, f, &mut findings);
        rules::alloc::check(cfg, f, &mut findings);
        rules::units::check(cfg, f, &mut findings);
        rules::events::check(cfg, f, &mut findings);
    }
    rules::stalls::check(cfg, files, &mut findings);
    rules::shards::check(cfg, files, &idx, &mut findings);
    findings
}

/// Runs all rules over already-parsed files and applies both suppression
/// layers (inline directives, then the `lint.toml` allowlist). This is
/// the engine the fixture tests drive directly.
pub fn run(cfg: &LintConfig, files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = run_raw(cfg, files);
    apply_suppressions(cfg, files, &mut findings);
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings
}

/// Drops findings covered by an inline `lint: allow(Rn)` directive or a
/// `lint.toml` `[[allow]]` entry. Centralized (rather than per-rule) so
/// [`run_raw`] can observe what each suppression actually suppresses.
fn apply_suppressions(cfg: &LintConfig, files: &[SourceFile], findings: &mut Vec<Finding>) {
    findings.retain(|fd| {
        let file = files.iter().find(|f| f.path == fd.path);
        let inline = file.is_some_and(|f| f.allowed_inline(fd.line.saturating_sub(1), fd.rule));
        let text = file.map_or("", |f| f.line(fd.line.saturating_sub(1)));
        !(inline || cfg.is_allowed(fd.rule, &fd.path, text))
    });
}

/// Loads `lint.toml` at `root`, scans the workspace sources, runs the
/// rules, and audits every suppression against the raw findings. Returns
/// the findings (rule violations plus `AUDIT` entries for stale allows)
/// and the number of files scanned.
///
/// # Errors
///
/// I/O failures and config parse errors are reported as strings; a missing
/// `lint.toml` is an error (the linter refuses to run unconfigured).
pub fn run_workspace(root: &Path) -> Result<(Vec<Finding>, usize), String> {
    let cfg_path = root.join("lint.toml");
    let cfg_text = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = LintConfig::parse(&cfg_text)?;

    let mut paths = Vec::new();
    let crates_dir = root.join("crates");
    for entry in read_dir_sorted(&crates_dir)? {
        let src = entry.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut paths)?;
        }
    }
    // The root `gmh` facade crate.
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut paths)?;
    }
    paths.sort();

    let mut files = Vec::with_capacity(paths.len());
    for p in &paths {
        let text =
            std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile::parse(&rel, &text));
    }
    let n = files.len();

    let raw = run_raw(&cfg, &files);
    let mut findings = raw.clone();
    apply_suppressions(&cfg, &files, &mut findings);
    audit::check(&cfg, &files, &raw, &mut findings);
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok((findings, n))
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut entries = Vec::new();
    let iter =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in iter {
        entries.push(
            entry
                .map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?
                .path(),
        );
    }
    entries.sort();
    Ok(entries)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for p in read_dir_sorted(dir)? {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Renders findings plus a one-line summary.
#[must_use]
pub fn render(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str(&format!(
            "gmh-lint: clean — {files_scanned} files, 9 rules + suppression audit, 0 findings\n"
        ));
    } else {
        out.push_str(&format!(
            "gmh-lint: {} finding(s) across {files_scanned} files\n",
            findings.len()
        ));
    }
    out
}

/// Renders findings as line-delimited JSON (one RFC 8259 object per
/// finding: `rule`, `path`, `line`, `snippet`, `reason`, `hint`), for CI
/// artifacts and problem matchers. Snippets are read back from `root`;
/// a file that has vanished since the scan yields an empty snippet.
#[must_use]
pub fn render_json(root: &Path, findings: &[Finding]) -> String {
    use gmh_serve::json::Json;
    use std::collections::BTreeMap;

    let mut cache: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    let mut out = String::new();
    for fd in findings {
        let lines = cache.entry(fd.path.as_str()).or_insert_with(|| {
            std::fs::read_to_string(root.join(&fd.path))
                .map(|t| t.lines().map(str::to_string).collect())
                .unwrap_or_default()
        });
        let snippet = lines
            .get(fd.line.saturating_sub(1))
            .map_or("", |l| l.trim());
        let obj: BTreeMap<String, Json> = [
            ("rule".to_string(), Json::Str(fd.rule.to_string())),
            ("path".to_string(), Json::Str(fd.path.clone())),
            ("line".to_string(), Json::Num(fd.line.to_string())),
            ("snippet".to_string(), Json::Str(snippet.to_string())),
            ("reason".to_string(), Json::Str(fd.message.clone())),
            ("hint".to_string(), Json::Str(fd.hint.clone())),
        ]
        .into_iter()
        .collect();
        out.push_str(&Json::Obj(obj).encode());
        out.push('\n');
    }
    out
}
