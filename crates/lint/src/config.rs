//! `lint.toml` configuration.
//!
//! The linter cannot use the `toml` crate (offline build environment), so
//! this module reads the small TOML subset the config actually uses: string
//! and string-array values, `[dotted.table]` headers and `[[allow]]`
//! array-of-tables. Anything outside that subset is a hard error — better
//! to fail loudly than to silently drop an allowlist entry.

use std::collections::BTreeMap;

/// One allowlist entry: suppresses findings of `rule` on lines of `file`
/// whose raw text contains `contains`. Empty `file`/`contains` match
/// everything; `reason` is mandatory documentation.
#[derive(Clone, Debug, Default)]
pub struct Allow {
    /// Rule id, e.g. `"R2"`.
    pub rule: String,
    /// Repo-relative path suffix the entry applies to (empty = any file).
    pub file: String,
    /// Substring of the raw source line (empty = any line).
    pub contains: String,
    /// Why the violation is acceptable. Required.
    pub reason: String,
    /// 1-indexed `lint.toml` line of the `[[allow]]` header, for the
    /// suppression audit's findings.
    pub line: usize,
}

/// One stall-cause enum the exhaustiveness rule (R5) tracks.
#[derive(Clone, Debug)]
pub struct StallEnum {
    /// Enum name, e.g. `"L2StallKind"`.
    pub name: String,
    /// Repo-relative path of the defining file.
    pub file: String,
    /// Canonical attribution-precedence order (must match declaration
    /// order; highest priority first).
    pub order: Vec<String>,
}

/// R7 shard-isolation configuration.
#[derive(Clone, Debug, Default)]
pub struct R7Config {
    /// The model-state root type; everything reachable from it through
    /// field types is shard state (e.g. `"Shard"`).
    pub state_root: String,
    /// The one sanctioned home of the worker pool (path suffix): the only
    /// model file allowed to call `thread::spawn`.
    pub pool_file: String,
    /// Names of the shard-region entry functions; the call-graph walk
    /// from these must stay free of sharing primitives.
    pub region_fns: Vec<String>,
}

/// R8 time-unit-consistency configuration.
#[derive(Clone, Debug, Default)]
pub struct R8Config {
    /// Sanctioned conversion functions: a statement calling one of these
    /// may mix unit classes (e.g. `ps_to_core_cycles`).
    pub convert_fns: Vec<String>,
    /// Files (path suffixes) exempt from mixing checks entirely — the
    /// clock-domain implementation where conversion lives.
    pub conversion_home: Vec<String>,
    /// Files (path suffixes) where bare numeric literals may initialize
    /// unit-tagged fields: configs and presets.
    pub literal_files: Vec<String>,
    /// Type names carrying the picosecond class (e.g. `Picos`), so a
    /// `let x: Picos = ..` binding joins the `ps` unit class by type.
    pub ps_types: Vec<String>,
}

/// Parsed `lint.toml`.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    /// Crate directory names under `crates/` whose `src/` trees carry the
    /// model invariants.
    pub model_crates: Vec<String>,
    /// Files (path suffixes) R2 exempts: the bounded-queue implementation
    /// itself.
    pub queue_impl: Vec<String>,
    /// Stall enums R5 cross-checks.
    pub stall_enums: Vec<StallEnum>,
    /// R7 shard-isolation settings (rule skipped when absent).
    pub r7: Option<R7Config>,
    /// R8 time-unit settings (rule skipped when absent).
    pub r8: Option<R8Config>,
    /// Allowlist entries.
    pub allows: Vec<Allow>,
}

impl LintConfig {
    /// Parses the `lint.toml` text.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for anything outside
    /// the supported subset.
    pub fn parse(text: &str) -> Result<LintConfig, String> {
        let mut cfg = LintConfig::default();
        // Current table context.
        enum Ctx {
            None,
            Lint,
            Enum(usize),
            R7,
            R8,
            Allow(usize),
        }
        let mut ctx = Ctx::None;
        for (ln, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("lint.toml:{}: {msg}: `{raw}`", ln + 1);
            if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                if header.trim() != "allow" {
                    return Err(err("unsupported array-of-tables"));
                }
                cfg.allows.push(Allow {
                    line: ln + 1,
                    ..Allow::default()
                });
                ctx = Ctx::Allow(cfg.allows.len() - 1);
            } else if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let header = header.trim();
                if header == "lint" {
                    ctx = Ctx::Lint;
                } else if header == "r7" {
                    cfg.r7 = Some(R7Config::default());
                    ctx = Ctx::R7;
                } else if header == "r8" {
                    cfg.r8 = Some(R8Config::default());
                    ctx = Ctx::R8;
                } else if let Some(name) = header.strip_prefix("r5.enums.") {
                    cfg.stall_enums.push(StallEnum {
                        name: name.to_string(),
                        file: String::new(),
                        order: Vec::new(),
                    });
                    ctx = Ctx::Enum(cfg.stall_enums.len() - 1);
                } else {
                    return Err(err("unsupported table"));
                }
            } else if let Some((key, value)) = line.split_once('=') {
                let key = key.trim();
                let value = value.trim();
                match ctx {
                    Ctx::Lint => match key {
                        "model_crates" => cfg.model_crates = parse_str_array(value, &err)?,
                        "queue_impl" => cfg.queue_impl = parse_str_array(value, &err)?,
                        _ => return Err(err("unknown [lint] key")),
                    },
                    Ctx::Enum(i) => match key {
                        "file" => cfg.stall_enums[i].file = parse_str(value, &err)?,
                        "order" => cfg.stall_enums[i].order = parse_str_array(value, &err)?,
                        _ => return Err(err("unknown [r5.enums.*] key")),
                    },
                    Ctx::R7 => {
                        // INVARIANT: Ctx::R7 is only entered after cfg.r7
                        // is set to Some above.
                        let r7 = cfg.r7.as_mut().expect("[r7] context set");
                        match key {
                            "state_root" => r7.state_root = parse_str(value, &err)?,
                            "pool_file" => r7.pool_file = parse_str(value, &err)?,
                            "region_fns" => r7.region_fns = parse_str_array(value, &err)?,
                            _ => return Err(err("unknown [r7] key")),
                        }
                    }
                    Ctx::R8 => {
                        // INVARIANT: Ctx::R8 is only entered after cfg.r8
                        // is set to Some above.
                        let r8 = cfg.r8.as_mut().expect("[r8] context set");
                        match key {
                            "convert_fns" => r8.convert_fns = parse_str_array(value, &err)?,
                            "conversion_home" => {
                                r8.conversion_home = parse_str_array(value, &err)?;
                            }
                            "literal_files" => r8.literal_files = parse_str_array(value, &err)?,
                            "ps_types" => r8.ps_types = parse_str_array(value, &err)?,
                            _ => return Err(err("unknown [r8] key")),
                        }
                    }
                    Ctx::Allow(i) => {
                        let a = &mut cfg.allows[i];
                        match key {
                            "rule" => a.rule = parse_str(value, &err)?,
                            "file" => a.file = parse_str(value, &err)?,
                            "contains" => a.contains = parse_str(value, &err)?,
                            "reason" => a.reason = parse_str(value, &err)?,
                            _ => return Err(err("unknown [[allow]] key")),
                        }
                    }
                    Ctx::None => return Err(err("key outside any table")),
                }
            } else {
                return Err(err("unparseable line"));
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    fn validate(&self) -> Result<(), String> {
        if self.model_crates.is_empty() {
            return Err("lint.toml: [lint] model_crates must be non-empty".into());
        }
        for a in &self.allows {
            if a.rule.is_empty() {
                return Err("lint.toml: [[allow]] entry missing `rule`".into());
            }
            if a.reason.is_empty() {
                return Err(format!(
                    "lint.toml: [[allow]] entry for {} (file `{}`) missing `reason` — \
                     every suppression must be justified",
                    a.rule, a.file
                ));
            }
        }
        let mut seen = BTreeMap::new();
        for e in &self.stall_enums {
            if e.file.is_empty() || e.order.is_empty() {
                return Err(format!(
                    "lint.toml: [r5.enums.{}] needs both `file` and `order`",
                    e.name
                ));
            }
            if seen.insert(e.name.clone(), ()).is_some() {
                return Err(format!("lint.toml: duplicate enum {}", e.name));
            }
        }
        if let Some(r7) = &self.r7 {
            if r7.state_root.is_empty() || r7.region_fns.is_empty() {
                return Err("lint.toml: [r7] needs both `state_root` and `region_fns`".to_string());
            }
        }
        Ok(())
    }

    /// Whether a finding of `rule` at `path`:`line_text` is allowlisted.
    pub fn is_allowed(&self, rule: &str, path: &str, line_text: &str) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule
                && (a.file.is_empty() || path.ends_with(&a.file))
                && (a.contains.is_empty() || line_text.contains(&a.contains))
        })
    }
}

fn strip_comment(line: &str) -> &str {
    // The config subset has no `#` inside strings except in reasons we
    // never re-read; cut at the first `#` outside quotes.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_str(v: &str, err: &impl Fn(&str) -> String) -> Result<String, String> {
    v.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| err("expected a quoted string"))
}

fn parse_str_array(v: &str, err: &impl Fn(&str) -> String) -> Result<Vec<String>, String> {
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err("expected a string array"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_str(item, err)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[lint]
model_crates = ["types", "cache"]
queue_impl = ["crates/types/src/queue.rs"]

[r5.enums.L2StallKind]
file = "crates/cache/src/stall.rs"
order = ["BpIcnt", "Port"]

[[allow]]
rule = "R2"
file = "crates/core/src/sim.rs"
contains = "VecDeque"
reason = "ideal queues are unbounded by construction"
"#;

    #[test]
    fn parses_sample() {
        let c = LintConfig::parse(SAMPLE).unwrap();
        assert_eq!(c.model_crates, vec!["types", "cache"]);
        assert_eq!(c.stall_enums.len(), 1);
        assert_eq!(c.stall_enums[0].order, vec!["BpIcnt", "Port"]);
        assert_eq!(c.allows.len(), 1);
    }

    #[test]
    fn allow_matching_uses_file_suffix_and_substring() {
        let c = LintConfig::parse(SAMPLE).unwrap();
        assert!(c.is_allowed("R2", "crates/core/src/sim.rs", "x: VecDeque<u8>"));
        assert!(!c.is_allowed("R2", "crates/core/src/sim.rs", "x: Vec<u8>"));
        assert!(!c.is_allowed("R2", "crates/icnt/src/network.rs", "VecDeque"));
        assert!(!c.is_allowed("R1", "crates/core/src/sim.rs", "VecDeque"));
    }

    #[test]
    fn missing_reason_is_rejected() {
        let bad = "[lint]\nmodel_crates = [\"a\"]\n[[allow]]\nrule = \"R1\"\n";
        assert!(LintConfig::parse(bad).unwrap_err().contains("reason"));
    }

    #[test]
    fn unknown_tables_are_rejected() {
        let bad = "[lint]\nmodel_crates = [\"a\"]\n[mystery]\nx = \"1\"\n";
        assert!(LintConfig::parse(bad).is_err());
    }

    #[test]
    fn empty_model_crates_rejected() {
        assert!(LintConfig::parse("[lint]\nmodel_crates = []\n").is_err());
    }
}
