//! Lexical model of one Rust source file.
//!
//! The linter is deliberately dependency-free (no `syn`), so it works on a
//! *masked* view of the source: a single-pass state machine blanks out
//! comments and string/char literals (preserving byte positions and line
//! structure), yielding one buffer in which only code tokens survive and a
//! second in which only comment text survives. Rules match tokens against
//! the code view and directives (`lint: allow(...)`, `INVARIANT:`) against
//! the comment view, so a rule name inside a string literal or a `HashMap`
//! mentioned in prose can never trigger or suppress a finding.
//!
//! On top of the masked view the file computes:
//! - *test regions*: lines belonging to a `#[cfg(test)]` item (brace-matched,
//!   not "rest of file"), which every rule skips;
//! - *function spans*: `(name, start, end)` for each `fn` with a body, used
//!   by the stall-attribution rule to scope its ordering checks.

/// One parsed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as reported in findings (repo-relative, `/`-separated).
    pub path: String,
    /// Raw source lines (for finding snippets and allowlist matching).
    pub lines: Vec<String>,
    /// Code view: comments and literals blanked with spaces.
    pub code: Vec<String>,
    /// Comment view: everything except comment text blanked with spaces.
    pub comments: Vec<String>,
    /// `in_test[i]` is true when line `i` belongs to a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Brace-matched `fn` bodies: `(name, first_line, last_line)`,
    /// 0-indexed inclusive.
    pub functions: Vec<(String, usize, usize)>,
}

#[derive(Clone, Copy, PartialEq)]
enum Lex {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

impl SourceFile {
    /// Parses `text` into the masked views.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let (code, comments) = mask(text);
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let in_test = test_regions(&code);
        let functions = function_spans(&code);
        SourceFile {
            path: path.to_string(),
            lines,
            code,
            comments,
            in_test,
            functions,
        }
    }

    /// The raw text of line `i` (0-indexed), or `""` past the end.
    pub fn line(&self, i: usize) -> &str {
        self.lines.get(i).map_or("", String::as_str)
    }

    /// Whether any comment on lines `lo..=hi` (0-indexed, clamped)
    /// contains `needle`.
    pub fn comment_in_range(&self, lo: usize, hi: usize, needle: &str) -> bool {
        let hi = hi.min(self.comments.len().saturating_sub(1));
        self.comments[lo.min(hi)..=hi]
            .iter()
            .any(|c| c.contains(needle))
    }

    /// Whether line `i` carries (or the previous line carries) an inline
    /// `lint: allow(RULE)` directive for `rule` (e.g. `"R3"`).
    pub fn allowed_inline(&self, i: usize, rule: &str) -> bool {
        let needle = format!("lint: allow({rule})");
        self.comment_in_range(i.saturating_sub(1), i, &needle)
    }

    /// Name of the innermost function containing line `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&str> {
        self.functions
            .iter()
            .filter(|(_, lo, hi)| (*lo..=*hi).contains(&i))
            .min_by_key(|(_, lo, hi)| hi - lo)
            .map(|(name, _, _)| name.as_str())
    }
}

/// Blanks comments+literals (code view) and code+literals (comment view).
fn mask(text: &str) -> (Vec<String>, Vec<String>) {
    let mut code_lines = Vec::new();
    let mut comment_lines = Vec::new();
    let mut code_line = String::new();
    let mut comment_line = String::new();
    let mut state = Lex::Code;

    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied().unwrap_or('\0');
        if c == '\n' {
            if state == Lex::LineComment {
                state = Lex::Code;
            }
            code_lines.push(std::mem::take(&mut code_line));
            comment_lines.push(std::mem::take(&mut comment_line));
            i += 1;
            continue;
        }
        match state {
            Lex::Code => match c {
                '/' if next == '/' => {
                    state = Lex::LineComment;
                    code_line.push_str("  ");
                    comment_line.push_str("  ");
                    i += 2;
                }
                '/' if next == '*' => {
                    state = Lex::BlockComment(1);
                    code_line.push_str("  ");
                    comment_line.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = Lex::Str;
                    code_line.push(' ');
                    comment_line.push(' ');
                    i += 1;
                }
                'r' if next == '"' || (next == '#' && raw_str_hashes(&bytes, i + 1).is_some()) => {
                    let hashes = if next == '"' {
                        0
                    } else {
                        raw_str_hashes(&bytes, i + 1).unwrap_or(0)
                    };
                    state = Lex::RawStr(hashes);
                    let skip = 2 + hashes as usize; // r, hashes, quote
                    for _ in 0..skip {
                        code_line.push(' ');
                        comment_line.push(' ');
                    }
                    i += skip;
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes within a
                    // few chars (`'x'`, `'\n'`, `'\u{1F}'`); a lifetime
                    // never closes. Look ahead for a closing quote before
                    // the next non-escape boundary.
                    if is_char_literal(&bytes, i) {
                        state = Lex::Char;
                    }
                    code_line.push(' ');
                    comment_line.push(' ');
                    i += 1;
                }
                _ => {
                    code_line.push(c);
                    comment_line.push(' ');
                    i += 1;
                }
            },
            Lex::LineComment => {
                code_line.push(' ');
                comment_line.push(c);
                i += 1;
            }
            Lex::BlockComment(depth) => {
                if c == '*' && next == '/' {
                    state = if depth == 1 {
                        Lex::Code
                    } else {
                        Lex::BlockComment(depth - 1)
                    };
                    code_line.push_str("  ");
                    comment_line.push_str("  ");
                    i += 2;
                } else if c == '/' && next == '*' {
                    state = Lex::BlockComment(depth + 1);
                    code_line.push_str("  ");
                    comment_line.push_str("  ");
                    i += 2;
                } else {
                    code_line.push(' ');
                    comment_line.push(c);
                    i += 1;
                }
            }
            Lex::Str => {
                if c == '\\' {
                    code_line.push(' ');
                    comment_line.push(' ');
                    if next != '\n' {
                        code_line.push(' ');
                        comment_line.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else {
                    if c == '"' {
                        state = Lex::Code;
                    }
                    code_line.push(' ');
                    comment_line.push(' ');
                    i += 1;
                }
            }
            Lex::RawStr(hashes) => {
                if c == '"' && closes_raw(&bytes, i, hashes) {
                    let skip = 1 + hashes as usize;
                    for _ in 0..skip {
                        code_line.push(' ');
                        comment_line.push(' ');
                    }
                    i += skip;
                    state = Lex::Code;
                } else {
                    code_line.push(' ');
                    comment_line.push(' ');
                    i += 1;
                }
            }
            Lex::Char => {
                if c == '\\' && next != '\n' {
                    code_line.push(' ');
                    code_line.push(' ');
                    comment_line.push(' ');
                    comment_line.push(' ');
                    i += 2;
                } else {
                    if c == '\'' {
                        state = Lex::Code;
                    }
                    code_line.push(' ');
                    comment_line.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code_line.is_empty() || !comment_line.is_empty() {
        code_lines.push(code_line);
        comment_lines.push(comment_line);
    }
    (code_lines, comment_lines)
}

/// At `bytes[start] == '#'`: counts hashes of a raw-string opener `r#*"`,
/// or `None` if no quote follows the hashes.
fn raw_str_hashes(bytes: &[char], start: usize) -> Option<u32> {
    let mut n = 0;
    let mut j = start;
    while bytes.get(j) == Some(&'#') {
        n += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&'"')).then_some(n)
}

/// Whether the `"` at `bytes[i]` is followed by `hashes` `#`s.
fn closes_raw(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Whether the `'` at `bytes[i]` opens a char literal (vs a lifetime).
fn is_char_literal(bytes: &[char], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some('\\') => true, // escape: always a literal
        Some(_) => {
            // `'x'` closes right away; `'\u{...}'` was handled above;
            // a lifetime (`'a`, `'static`) never has a quote after one
            // char. `'_'` is also a literal-like token we can mask.
            bytes.get(i + 2) == Some(&'\'')
        }
        None => false,
    }
}

/// Marks lines inside `#[cfg(test)]` items (attribute through the matched
/// closing brace of the item that follows).
fn test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].contains("#[cfg(test)]") {
            let end = item_end(code, i);
            for flag in in_test.iter_mut().take(end + 1).skip(i) {
                *flag = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

/// Line of the matched `}` closing the item starting at (or after) `start`;
/// falls back to the last line when braces never balance.
pub(crate) fn item_end(code: &[String], start: usize) -> usize {
    let mut depth = 0i64;
    let mut opened = false;
    for (i, line) in code.iter().enumerate().skip(start) {
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                ';' if !opened && depth == 0 => return i, // braceless item
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return i;
        }
    }
    code.len().saturating_sub(1)
}

/// Extracts `(name, start, end)` spans for every `fn` with a body.
fn function_spans(code: &[String]) -> Vec<(String, usize, usize)> {
    let mut spans = Vec::new();
    for (i, line) in code.iter().enumerate() {
        let Some(name) = fn_name(line) else { continue };
        let end = item_end(code, i);
        spans.push((name, i, end));
    }
    spans
}

/// The identifier after a `fn ` keyword token on `line`, if any.
fn fn_name(line: &str) -> Option<String> {
    let mut rest = line;
    let mut offset = 0;
    while let Some(pos) = rest.find("fn ") {
        let abs = offset + pos;
        let before_ok = abs == 0
            || !line[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok {
            let after = line[abs + 3..].trim_start();
            let name: String = after
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
        offset = abs + 3;
        rest = &line[offset..];
    }
    None
}

/// Whether `hay` contains `needle` as a whole word (identifier-boundary
/// delimited on both sides).
pub fn contains_token(hay: &str, needle: &str) -> bool {
    find_token(hay, needle).is_some()
}

/// Byte offset of the first whole-word occurrence of `needle` in `hay`.
pub fn find_token(hay: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let abs = from + pos;
        let left_ok = abs == 0
            || !hay[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = abs + needle.len();
        let right_ok = end >= hay.len()
            || !hay[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if left_ok && right_ok {
            return Some(abs);
        }
        from = abs + needle.len().max(1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_and_comments() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = \"HashMap\"; // HashMap here\nlet b = HashMap::new();\n",
        );
        assert!(!contains_token(&f.code[0], "HashMap"));
        assert!(f.comments[0].contains("HashMap here"));
        assert!(contains_token(&f.code[1], "HashMap"));
    }

    #[test]
    fn masks_block_comments_and_chars() {
        let f = SourceFile::parse("x.rs", "let c = '\"'; /* VecDeque */ let d = 1;\n");
        assert!(!f.code[0].contains("VecDeque"));
        assert!(f.code[0].contains("let d = 1;"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let f = SourceFile::parse("x.rs", "fn f<'a>(x: &'a str) { x.unwrap() }\n");
        assert!(f.code[0].contains(".unwrap()"));
    }

    #[test]
    fn raw_strings_masked() {
        let f = SourceFile::parse("x.rs", "let s = r#\"a \" HashMap \"#; let t = 2;\n");
        assert!(!f.code[0].contains("HashMap"));
        assert!(f.code[0].contains("let t = 2;"));
    }

    #[test]
    fn test_region_is_brace_matched() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.in_test[0]);
        assert!(f.in_test[1] && f.in_test[2] && f.in_test[3] && f.in_test[4]);
        assert!(!f.in_test[5], "lines after the tests mod are live again");
    }

    #[test]
    fn function_spans_nest() {
        let src = "impl X {\n  fn outer(&self) {\n    let y = 1;\n  }\n  fn second() {}\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.enclosing_fn(2), Some("outer"));
        assert_eq!(f.enclosing_fn(4), Some("second"));
        assert_eq!(f.enclosing_fn(0), None);
    }

    #[test]
    fn token_boundaries_respected() {
        assert!(contains_token("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_token("let MyHashMapLike = 1;", "HashMap"));
        assert!(!contains_token("hash_map()", "HashMap"));
    }

    #[test]
    fn inline_allow_matches_current_and_previous_line() {
        let src = "// lint: allow(R3): fits\nlet a = b as u32;\nlet c = d as u32;\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.allowed_inline(1, "R3"));
        assert!(!f.allowed_inline(2, "R3"));
    }
}
