//! Workspace item index: types, functions, impl blocks and a
//! name-resolved call graph, built from the masked lexical view.
//!
//! The linter stays dependency-free (no `syn`), so the index is recovered
//! from [`SourceFile::code`] with the same single-pass, brace-matched
//! techniques the rules already use. It is deliberately *conservative*:
//! name resolution over-approximates (a method call resolves to every
//! in-workspace method of that name), so reachability queries can produce
//! false edges but never miss a real one. The cross-file rules built on
//! top (R7 shard isolation, R8 unit consistency) only ever *ban*
//! constructs on reachable paths, so over-approximation errs toward
//! flagging, and every finding still points at a concrete line a human
//! can judge.

use std::collections::{BTreeMap, BTreeSet};

use crate::source::{contains_token, find_token, SourceFile};

/// One field (or enum-variant payload slot) of a type.
#[derive(Clone, Debug)]
pub struct Field {
    /// Field name (tuple fields and variant payloads use the position).
    pub name: String,
    /// Type text as written, e.g. `Vec<SimtCore>`.
    pub ty: String,
    /// 0-indexed declaration line.
    pub line: usize,
}

/// A struct or enum definition.
#[derive(Clone, Debug)]
pub struct TypeDef {
    /// Type name.
    pub name: String,
    /// Index of the defining file in the scanned set.
    pub file: usize,
    /// 0-indexed line of the `struct`/`enum` keyword.
    pub line: usize,
    /// Fields (structs) or variant payload types (enums).
    pub fields: Vec<Field>,
}

/// A function definition with its signature and body span.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// `impl` type the function belongs to, if any.
    pub self_ty: Option<String>,
    /// Index of the defining file.
    pub file: usize,
    /// 0-indexed first line (the `fn` keyword).
    pub start: usize,
    /// 0-indexed last line of the body (inclusive).
    pub end: usize,
    /// Whether the signature takes `self` in any form.
    pub takes_self: bool,
    /// Parameters (excluding `self`): `(name, type text)`.
    pub params: Vec<(String, String)>,
    /// Return type text after `->`, if any.
    pub ret: Option<String>,
}

/// The workspace-wide index.
#[derive(Debug, Default)]
pub struct ItemIndex {
    /// All struct/enum definitions.
    pub types: Vec<TypeDef>,
    /// Type name → indices into [`ItemIndex::types`].
    pub type_by_name: BTreeMap<String, Vec<usize>>,
    /// All function definitions.
    pub fns: Vec<FnDef>,
    /// Function name → indices into [`ItemIndex::fns`].
    pub fn_by_name: BTreeMap<String, Vec<usize>>,
    /// Call graph: `calls[i]` are the indices of functions `fns[i]` may
    /// call (name-resolved, over-approximate).
    pub calls: Vec<Vec<usize>>,
}

impl ItemIndex {
    /// Builds the index over the scanned files.
    pub fn build(files: &[SourceFile]) -> ItemIndex {
        let mut idx = ItemIndex::default();
        for (fi, f) in files.iter().enumerate() {
            collect_types(fi, f, &mut idx);
            collect_fns(fi, f, &mut idx);
        }
        for (i, t) in idx.types.iter().enumerate() {
            idx.type_by_name.entry(t.name.clone()).or_default().push(i);
        }
        for (i, fd) in idx.fns.iter().enumerate() {
            idx.fn_by_name.entry(fd.name.clone()).or_default().push(i);
        }
        idx.calls = (0..idx.fns.len())
            .map(|i| resolve_calls(&idx, files, i))
            .collect();
        idx
    }

    /// Names of all types reachable from `root` through field types
    /// (including `root` itself when it is defined in the scanned set).
    pub fn reachable_types(&self, root: &str) -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut frontier = vec![root.to_string()];
        while let Some(name) = frontier.pop() {
            if !seen.insert(name.clone()) {
                continue;
            }
            let Some(defs) = self.type_by_name.get(&name) else {
                continue;
            };
            for &ti in defs {
                for field in &self.types[ti].fields {
                    for ident in type_idents(&field.ty) {
                        if self.type_by_name.contains_key(&ident) && !seen.contains(&ident) {
                            frontier.push(ident);
                        }
                    }
                }
            }
        }
        seen
    }

    /// Indices of all functions reachable from the given roots through the
    /// call graph, restricted to callees whose `self` type satisfies
    /// `admit` (free functions always pass). The filter keeps a walk from
    /// the shard-region roots inside the model-state type family instead
    /// of following every same-named method in the workspace.
    pub fn reachable_fns(
        &self,
        roots: &[usize],
        admit: &dyn Fn(&FnDef) -> bool,
    ) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut frontier: Vec<usize> = roots.to_vec();
        while let Some(i) = frontier.pop() {
            if !seen.insert(i) {
                continue;
            }
            for &callee in &self.calls[i] {
                if !seen.contains(&callee) && admit(&self.fns[callee]) {
                    frontier.push(callee);
                }
            }
        }
        seen
    }
}

/// Capitalized identifiers inside a type text: the candidate workspace
/// type names (`Vec<SimtCore>` → `Vec`, `SimtCore`).
pub fn type_idents(ty: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in ty.chars().chain(std::iter::once(' ')) {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            if cur.chars().next().is_some_and(char::is_uppercase) {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    out
}

/// Parses `struct`/`enum` definitions in one file.
fn collect_types(fi: usize, f: &SourceFile, idx: &mut ItemIndex) {
    let mut i = 0;
    while i < f.code.len() {
        let line = &f.code[i];
        if f.in_test[i] {
            i += 1;
            continue;
        }
        let kw = if contains_token(line, "struct") {
            Some("struct")
        } else if contains_token(line, "enum") {
            Some("enum")
        } else {
            None
        };
        let Some(kw) = kw else {
            i += 1;
            continue;
        };
        let Some(pos) = find_token(line, kw) else {
            i += 1;
            continue;
        };
        let name = ident_after(&line[pos + kw.len()..]);
        if name.is_empty() {
            i += 1;
            continue;
        }
        let end = crate::source::item_end(&f.code, i);
        let fields = if kw == "struct" {
            parse_struct_fields(f, i, end)
        } else {
            parse_enum_payloads(f, i, end)
        };
        idx.types.push(TypeDef {
            name,
            file: fi,
            line: i,
            fields,
        });
        // Type bodies cannot nest further type definitions we care about;
        // continue from the next line so `impl` blocks following a
        // one-line struct are still seen.
        i += 1;
    }
}

/// Named fields of a `struct Name { .. }` (or tuple fields of
/// `struct Name(..);`) between `start` and `end`.
fn parse_struct_fields(f: &SourceFile, start: usize, end: usize) -> Vec<Field> {
    let header = &f.code[start];
    // Tuple struct on one line: `struct X(A, B);`
    if let (Some(op), Some(cl)) = (header.find('('), header.rfind(')')) {
        if op < cl && header[..op].contains("struct") {
            return split_top_level(&header[op + 1..cl])
                .into_iter()
                .enumerate()
                .map(|(k, ty)| Field {
                    name: k.to_string(),
                    ty: ty.trim().to_string(),
                    line: start,
                })
                .collect();
        }
    }
    let mut fields = Vec::new();
    let mut depth = 0i64;
    let mut opened = false;
    for (i, line) in f.code.iter().enumerate().take(end + 1).skip(start) {
        if opened && depth == 1 {
            if let Some(fd) = parse_field_line(line, i) {
                fields.push(fd);
            }
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
    fields
}

/// One `name: Type,` field line at brace depth 1, if present.
fn parse_field_line(line: &str, i: usize) -> Option<Field> {
    let t = line.trim_start();
    let t = t.strip_prefix("pub(crate)").unwrap_or(t);
    let t = t.strip_prefix("pub").unwrap_or(t).trim_start();
    let name: String = t
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(char::is_uppercase) {
        return None;
    }
    let rest = t[name.len()..].trim_start();
    let ty_text = rest.strip_prefix(':')?;
    let ty = ty_text.trim().trim_end_matches(',').trim().to_string();
    if ty.is_empty() {
        return None;
    }
    Some(Field { name, ty, line: i })
}

/// Variant payload types of an `enum` body: `Variant(A, B)` and
/// `Variant { field: Ty }` both contribute their contained types.
fn parse_enum_payloads(f: &SourceFile, start: usize, end: usize) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut depth = 0i64;
    let mut opened = false;
    for (i, line) in f.code.iter().enumerate().take(end + 1).skip(start) {
        let at_variant_depth = opened && depth >= 1;
        if at_variant_depth && i > start {
            // Tuple payload on this line.
            if let (Some(op), Some(cl)) = (line.find('('), line.rfind(')')) {
                if op < cl {
                    for (k, ty) in split_top_level(&line[op + 1..cl]).into_iter().enumerate() {
                        fields.push(Field {
                            name: format!("payload{k}"),
                            ty: ty.trim().to_string(),
                            line: i,
                        });
                    }
                }
            }
            // Struct-variant field line (multi-line variant bodies sit at
            // depth >= 2 and parse like ordinary fields).
            if let Some(fd) = parse_field_line(line, i) {
                fields.push(fd);
            }
            // Single-line struct variant: `B { inner: Warp },`.
            if let (Some(ob), Some(cb)) = (line.find('{'), line.rfind('}')) {
                if ob < cb {
                    for part in split_top_level(&line[ob + 1..cb]) {
                        if let Some((name, ty)) = part.split_once(':') {
                            fields.push(Field {
                                name: name.trim().to_string(),
                                ty: ty.trim().to_string(),
                                line: i,
                            });
                        }
                    }
                }
            }
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
    fields
}

/// Splits `a, b<c, d>, e` at top-level commas.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

/// First identifier after optional whitespace/generics markers.
fn ident_after(s: &str) -> String {
    s.trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

/// Parses `fn` definitions (with impl-type attribution) in one file.
fn collect_fns(fi: usize, f: &SourceFile, idx: &mut ItemIndex) {
    // Impl spans: (self type, start, end).
    let mut impls: Vec<(String, usize, usize)> = Vec::new();
    for (i, line) in f.code.iter().enumerate() {
        if let Some(ty) = impl_self_ty(line) {
            impls.push((ty, i, crate::source::item_end(&f.code, i)));
        }
    }
    for (name, start, end) in &f.functions {
        if f.in_test[*start] {
            continue;
        }
        let self_ty = impls
            .iter()
            .filter(|(_, lo, hi)| (*lo..=*hi).contains(start))
            .min_by_key(|(_, lo, hi)| hi - lo)
            .map(|(ty, _, _)| ty.clone());
        let sig = signature_text(&f.code, *start);
        let (takes_self, params, ret) = parse_signature(&sig);
        idx.fns.push(FnDef {
            name: name.clone(),
            self_ty,
            file: fi,
            start: *start,
            end: *end,
            takes_self,
            params,
            ret,
        });
    }
}

/// `impl [<..>] Type [for Trait]` → the implementing type name.
fn impl_self_ty(line: &str) -> Option<String> {
    let pos = find_token(line, "impl")?;
    let mut rest = &line[pos + 4..];
    // Skip a generics list directly after `impl`.
    if rest.trim_start().starts_with('<') {
        let open = rest.find('<')?;
        let mut depth = 0i64;
        let mut close = None;
        for (k, c) in rest[open..].char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(open + k);
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &rest[close? + 1..];
    }
    // `impl Trait for Type` → take the part after `for`.
    let ty_part = match find_token(rest, "for") {
        Some(p) => &rest[p + 3..],
        None => rest,
    };
    let name = ident_after(ty_part);
    (!name.is_empty() && name.chars().next().is_some_and(char::is_uppercase)).then_some(name)
}

/// Signature text from the `fn` line through the body-opening `{` (or
/// trailing `;` for a declaration), collapsed to one string.
fn signature_text(code: &[String], start: usize) -> String {
    let mut out = String::new();
    for line in code.iter().skip(start).take(12) {
        for c in line.chars() {
            if c == '{' || c == ';' {
                return out;
            }
            out.push(c);
        }
        out.push(' ');
    }
    out
}

/// `(takes_self, params, return type)` from a collapsed signature.
fn parse_signature(sig: &str) -> (bool, Vec<(String, String)>, Option<String>) {
    let Some(open) = sig.find('(') else {
        return (false, Vec::new(), None);
    };
    let mut depth = 0i64;
    let mut close = sig.len();
    for (k, c) in sig[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    close = open + k;
                    break;
                }
            }
            _ => {}
        }
    }
    let mut takes_self = false;
    let mut params = Vec::new();
    for part in split_top_level(&sig[open + 1..close]) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if contains_token(part, "self") && !part.contains(':') {
            takes_self = true;
            continue;
        }
        if let Some((name, ty)) = part.split_once(':') {
            let name = name.trim().trim_start_matches("mut ").trim().to_string();
            params.push((name, ty.trim().to_string()));
        }
    }
    let ret = sig[close..]
        .find("->")
        .map(|p| sig[close + p + 2..].trim().to_string())
        .filter(|r| !r.is_empty());
    (takes_self, params, ret)
}

/// Callees of `fns[i]`: method calls (`.name(`), path calls
/// (`Type::name(`) and bare calls (`name(`) resolved against the index.
fn resolve_calls(idx: &ItemIndex, files: &[SourceFile], i: usize) -> Vec<usize> {
    let fd = &idx.fns[i];
    let f = &files[fd.file];
    let mut out: BTreeSet<usize> = BTreeSet::new();
    for li in fd.start..=fd.end.min(f.code.len().saturating_sub(1)) {
        let line = &f.code[li];
        let bytes = line.as_bytes();
        let mut k = 0;
        while k < bytes.len() {
            let c = bytes[k] as char;
            if !(c.is_ascii_alphabetic() || c == '_') {
                k += 1;
                continue;
            }
            let start = k;
            while k < bytes.len() && {
                let c = bytes[k] as char;
                c.is_ascii_alphanumeric() || c == '_'
            } {
                k += 1;
            }
            let ident = &line[start..k];
            // Only identifiers immediately followed by `(` are calls.
            if bytes.get(k) != Some(&b'(') {
                continue;
            }
            // Skip the definition's own `fn name(` line.
            if li == fd.start && ident == fd.name {
                continue;
            }
            let before = line[..start].trim_end();
            let is_method = before.ends_with('.');
            let path_ty = before
                .strip_suffix("::")
                .map(|p| {
                    p.rsplit(|c: char| !(c.is_alphanumeric() || c == '_'))
                        .next()
                        .unwrap_or("")
                        .to_string()
                })
                .filter(|t| t.chars().next().is_some_and(char::is_uppercase));
            let Some(cands) = idx.fn_by_name.get(ident) else {
                continue;
            };
            for &ci in cands {
                if ci == i {
                    continue;
                }
                let cand = &idx.fns[ci];
                let matches = if let Some(ty) = &path_ty {
                    cand.self_ty.as_deref() == Some(ty.as_str())
                } else if is_method {
                    cand.takes_self
                } else {
                    // Bare call: free function, or a same-impl method
                    // referenced without `self.` (rare; accept both).
                    cand.self_ty.is_none() || cand.self_ty == fd.self_ty
                };
                if matches {
                    out.insert(ci);
                }
            }
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx_of(src: &str) -> (ItemIndex, Vec<SourceFile>) {
        let files = vec![SourceFile::parse("crates/core/src/x.rs", src)];
        let idx = ItemIndex::build(&files);
        (idx, files)
    }

    #[test]
    fn parses_struct_fields_and_reachability() {
        let src = "pub struct Shard {\n    pub id: usize,\n    pub cores: Vec<SimtCore>,\n}\n\
                   pub struct SimtCore {\n    warps: Vec<Warp>,\n}\n\
                   pub struct Warp {\n    pc: u64,\n}\n\
                   pub struct Other {\n    x: u32,\n}\n";
        let (idx, _) = idx_of(src);
        let reach = idx.reachable_types("Shard");
        assert!(reach.contains("Shard") && reach.contains("SimtCore") && reach.contains("Warp"));
        assert!(!reach.contains("Other"));
    }

    #[test]
    fn parses_enum_payload_types() {
        let src = "pub enum Ev {\n    A(SimtCore),\n    B { inner: Warp },\n}\n\
                   pub struct SimtCore { x: u8 }\npub struct Warp { y: u8 }\n";
        let (idx, _) = idx_of(src);
        let reach = idx.reachable_types("Ev");
        assert!(reach.contains("SimtCore") && reach.contains("Warp"));
    }

    #[test]
    fn impl_methods_get_self_ty_and_call_graph_resolves() {
        let src = "pub struct A { x: u8 }\n\
                   impl A {\n    pub fn outer(&mut self) {\n        self.inner();\n        helper();\n    }\n\
                   \n    fn inner(&mut self) {\n        self.x = 1;\n    }\n}\n\
                   fn helper() {}\n";
        let (idx, _) = idx_of(src);
        let outer = idx.fn_by_name["outer"][0];
        assert_eq!(idx.fns[outer].self_ty.as_deref(), Some("A"));
        let callees: Vec<&str> = idx.calls[outer]
            .iter()
            .map(|&c| idx.fns[c].name.as_str())
            .collect();
        assert!(callees.contains(&"inner") && callees.contains(&"helper"));
    }

    #[test]
    fn reachable_fns_respects_admit_filter() {
        let src = "pub struct A { x: u8 }\npub struct B { y: u8 }\n\
                   impl A {\n    pub fn go(&mut self) {\n        self.step();\n    }\n\
                   \n    fn step(&mut self) {\n        bad();\n    }\n}\n\
                   impl B {\n    fn step(&mut self) {}\n}\n\
                   fn bad() {}\n";
        let (idx, _) = idx_of(src);
        let go = idx.fn_by_name["go"][0];
        let reach = idx.reachable_fns(&[go], &|fd| fd.self_ty.as_deref() != Some("B"));
        let names: Vec<(&str, Option<&str>)> = reach
            .iter()
            .map(|&i| (idx.fns[i].name.as_str(), idx.fns[i].self_ty.as_deref()))
            .collect();
        assert!(names.contains(&("step", Some("A"))));
        assert!(names.contains(&("bad", None)));
        assert!(!names.contains(&("step", Some("B"))));
    }

    #[test]
    fn tuple_struct_fields_parse() {
        let (idx, _) = idx_of("struct Wrap(SimtCore, u64);\nstruct SimtCore { x: u8 }\n");
        let reach = idx.reachable_types("Wrap");
        assert!(reach.contains("SimtCore"));
    }

    #[test]
    fn signature_params_parse() {
        let src = "fn f(a: u64, now_ps: Picos) -> u32 { 0 }\n";
        let (idx, _) = idx_of(src);
        let fd = &idx.fns[idx.fn_by_name["f"][0]];
        assert_eq!(fd.params.len(), 2);
        assert_eq!(fd.params[1], ("now_ps".to_string(), "Picos".to_string()));
        assert_eq!(fd.ret.as_deref(), Some("u32"));
        assert!(!fd.takes_self);
    }
}
