//! R2 — bounded-queue discipline: all model-crate buffering goes through
//! `gmh_types::queue::BoundedQueue`, so every queue exerts back-pressure
//! and feeds the occupancy telemetry behind the paper's Figs. 4-5. A raw
//! `VecDeque` is an unbounded buffer the bandwidth model cannot see.

use crate::config::LintConfig;
use crate::source::{contains_token, SourceFile};
use crate::Finding;

pub const RULE: &str = "R2";

pub fn check(cfg: &LintConfig, f: &SourceFile, out: &mut Vec<Finding>) {
    if !crate::in_model_crate(cfg, &f.path) {
        return;
    }
    // The BoundedQueue implementation itself is the one sanctioned home
    // for a raw VecDeque.
    if cfg.queue_impl.iter().any(|q| f.path.ends_with(q)) {
        return;
    }
    for (i, code) in f.code.iter().enumerate() {
        if f.in_test[i] {
            continue;
        }
        if contains_token(code, "VecDeque") {
            out.push(Finding {
                rule: RULE,
                path: f.path.clone(),
                line: i + 1,
                message: "raw `VecDeque` in a model crate bypasses back-pressure".to_string(),
                hint: "buffer through gmh_types::queue::BoundedQueue so occupancy telemetry \
                       and back-pressure apply"
                    .to_string(),
            });
        }
        // An mpsc channel is an unbounded queue the bandwidth model cannot
        // see. Cross-thread boundary queues (the parallel scheduler's pool,
        // the service layer's reply channels) must carry a written argument
        // for why their occupancy is bounded by protocol.
        if contains_token(code, "mpsc") {
            out.push(Finding {
                rule: RULE,
                path: f.path.clone(),
                line: i + 1,
                message: "`mpsc` channel in a model crate is an unbounded queue".to_string(),
                hint: "bound the occupancy by protocol and record the argument in lint.toml \
                       (or buffer through BoundedQueue); unbounded boundary queues hide \
                       back-pressure"
                    .to_string(),
            });
        }
    }
}
