//! R3 — cast safety: a narrowing `as` cast on a cycle count or address
//! silently truncates once a long simulation overflows the target type.
//! Lossy conversions must be `try_from` (fail loudly); provably-in-range
//! casts carry a `// lint: allow(R3): <why>` justification.

use crate::config::LintConfig;
use crate::source::{find_token, SourceFile};
use crate::Finding;

pub const RULE: &str = "R3";

/// Cast targets that can drop bits from the `u64`/`Picos` domain the
/// model computes in. (`usize`/`isize` are 64-bit on every supported
/// target, but the cast is still flagged so the justification is written
/// down where the assumption lives.)
const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

pub fn check(cfg: &LintConfig, f: &SourceFile, out: &mut Vec<Finding>) {
    if !crate::in_model_crate(cfg, &f.path) {
        return;
    }
    for (i, code) in f.code.iter().enumerate() {
        if f.in_test[i] {
            continue;
        }
        let mut from = 0;
        while let Some(pos) = find_token(&code[from..], "as") {
            let abs = from + pos;
            from = abs + 2;
            let target: String = code[abs + 2..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if NARROW.contains(&target.as_str()) {
                out.push(Finding {
                    rule: RULE,
                    path: f.path.clone(),
                    line: i + 1,
                    message: format!("narrowing `as {target}` cast in a model crate"),
                    hint: format!(
                        "use {target}::try_from(..) (lossy is a bug) or justify with \
                         `// lint: allow(R3): <why the value fits>`"
                    ),
                });
            }
        }
    }
}
