//! R6 — zero-allocation hot loops: the per-cycle functions (`cycle`,
//! `cycle_traced`, `icnt_tick`, `dram_tick`, `core_tick`) in model crates
//! may not allocate. A `vec![..]` or `.collect()` inside a function that
//! runs hundreds of millions of times dominates the simulator's wall time
//! (the run-loop overhaul found exactly such allocations behind ~40% of
//! the cycle path); scratch buffers belong on the owning struct, hoisted
//! out of the loop and reused.

use crate::config::LintConfig;
use crate::source::SourceFile;
use crate::Finding;

pub const RULE: &str = "R6";

/// Function names forming the per-cycle hot path. A line is in scope when
/// its *innermost* enclosing `fn` carries one of these names.
const HOT_FNS: &[&str] = &[
    "cycle",
    "cycle_traced",
    "icnt_tick",
    "dram_tick",
    "core_tick",
];

/// `(needle, what)` — allocation tokens. Matched left-boundary-aware
/// against the masked code view, so `invec!` or prose in comments never
/// trigger.
const ALLOCATING: &[(&str, &str)] = &[
    ("Vec::new", "`Vec::new()`"),
    ("vec!", "a `vec![..]` literal"),
    ("Box::new", "`Box::new()`"),
    (".collect(", "`.collect()`"),
];

pub fn check(cfg: &LintConfig, f: &SourceFile, out: &mut Vec<Finding>) {
    if !crate::in_model_crate(cfg, &f.path) {
        return;
    }
    for (i, code) in f.code.iter().enumerate() {
        if f.in_test[i] {
            continue;
        }
        let Some(name) = f.enclosing_fn(i) else {
            continue;
        };
        if !HOT_FNS.contains(&name) {
            continue;
        }
        for (needle, what) in ALLOCATING {
            if contains_left_bounded(code, needle) {
                out.push(Finding {
                    rule: RULE,
                    path: f.path.clone(),
                    line: i + 1,
                    message: format!("{what} allocates inside hot-loop fn `{name}`"),
                    hint: "per-cycle functions must not allocate: hoist the buffer into a \
                           scratch field on the owning struct and reuse it (clear, don't \
                           reallocate)"
                        .to_string(),
                });
            }
        }
    }
}

/// Whether `hay` contains `needle` with no identifier character
/// immediately before it (the needle's own tail — `!`, `(`, `new` — fixes
/// the right boundary).
fn contains_left_bounded(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let abs = from + pos;
        let left_ok = abs == 0
            || !hay[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if left_ok {
            return true;
        }
        from = abs + needle.len().max(1);
    }
    false
}
