//! R5 — stall-attribution exhaustiveness. The paper's bottleneck numbers
//! (Figs. 7-9) are only meaningful if every stall cycle is charged to
//! exactly one cause in a fixed priority order. This rule cross-checks,
//! for each stall enum registered in `lint.toml`:
//!
//! 1. the declaration order in the defining file matches the canonical
//!    (paper-precedence) order from the config;
//! 2. every variant is attributed from exactly one function outside the
//!    defining file — zero means a cause that can never be charged, two
//!    means double counting waiting to happen;
//! 3. within each attributing function, variants are first mentioned in
//!    canonical order, so the code's priority chain reads in paper order
//!    (bp-ICNT > port > cache > mshr > bp-DRAM for L2);
//! 4. counters are only bumped through `record(kind)` in the defining
//!    file — no direct `.bp_icnt.inc()`-style writes elsewhere.

use std::collections::BTreeMap;

use crate::config::{LintConfig, StallEnum};
use crate::source::{contains_token, find_token, SourceFile};
use crate::Finding;

pub const RULE: &str = "R5";

pub fn check(cfg: &LintConfig, files: &[SourceFile], out: &mut Vec<Finding>) {
    for e in &cfg.stall_enums {
        check_enum(cfg, e, files, out);
    }
}

fn check_enum(cfg: &LintConfig, e: &StallEnum, files: &[SourceFile], out: &mut Vec<Finding>) {
    let Some(def) = files.iter().find(|f| f.path.ends_with(&e.file)) else {
        out.push(Finding {
            rule: RULE,
            path: e.file.clone(),
            line: 1,
            message: format!(
                "defining file for `{}` not found in the scanned set",
                e.name
            ),
            hint: "fix the `file` entry under [r5.enums.*] in lint.toml".to_string(),
        });
        return;
    };

    // (1) Declaration order must match the canonical paper order.
    let declared = declared_variants(def, &e.name);
    let enum_line = enum_decl_line(def, &e.name).unwrap_or(0);
    if declared.is_empty() {
        out.push(Finding {
            rule: RULE,
            path: def.path.clone(),
            line: enum_line + 1,
            message: format!("could not parse variants of `enum {}`", e.name),
            hint: "fix the `file` entry under [r5.enums.*] in lint.toml".to_string(),
        });
        return;
    }
    let declared_names: Vec<&str> = declared.iter().map(|(v, _)| v.as_str()).collect();
    if declared_names != e.order.iter().map(String::as_str).collect::<Vec<_>>() {
        out.push(Finding {
            rule: RULE,
            path: def.path.clone(),
            line: enum_line + 1,
            message: format!(
                "`{}` declares [{}] but the paper precedence order is [{}]",
                e.name,
                declared_names.join(", "),
                e.order.join(", ")
            ),
            hint: "declaration order is the documented priority chain; reorder the variants \
                   or update lint.toml if the paper order itself changed"
                .to_string(),
        });
    }

    // Collect qualified mentions (`Enum::Variant`) outside the defining
    // file, in non-test model-crate code.
    // variant -> [(path, fn, line)]
    let mut mentions: BTreeMap<&str, Vec<(String, String, usize)>> = BTreeMap::new();
    for v in &e.order {
        mentions.insert(v.as_str(), Vec::new());
    }
    for f in files {
        if f.path == def.path || !crate::in_model_crate(cfg, &f.path) {
            continue;
        }
        for v in &e.order {
            let needle = format!("{}::{}", e.name, v);
            for (i, code) in f.code.iter().enumerate() {
                if f.in_test[i] || f.allowed_inline(i, RULE) {
                    continue;
                }
                if find_token(code, &needle).is_some() {
                    let func = f.enclosing_fn(i).unwrap_or("<file scope>").to_string();
                    mentions
                        .get_mut(v.as_str())
                        .expect("pre-seeded above")
                        .push((f.path.clone(), func, i));
                }
            }
        }
    }

    // (2) Exactly one attributing function per variant.
    for v in &e.order {
        let sites = &mentions[v.as_str()];
        let mut funcs: Vec<(String, String)> = sites
            .iter()
            .map(|(p, func, _)| (p.clone(), func.clone()))
            .collect();
        funcs.sort();
        funcs.dedup();
        match funcs.len() {
            1 => {}
            0 => out.push(Finding {
                rule: RULE,
                path: def.path.clone(),
                line: variant_decl_line(&declared, v).unwrap_or(enum_line) + 1,
                message: format!("`{}::{v}` is never attributed in model code", e.name),
                hint: "every stall cause must be charged somewhere, or the variant is dead \
                       bookkeeping; attribute it or allowlist it with a reason in lint.toml"
                    .to_string(),
            }),
            _ => {
                let (path, _, line) = &sites[sites.len() - 1];
                out.push(Finding {
                    rule: RULE,
                    path: path.clone(),
                    line: line + 1,
                    message: format!(
                        "`{}::{v}` is attributed from {} functions ({}) — single-site \
                         attribution prevents double counting",
                        e.name,
                        funcs.len(),
                        funcs
                            .iter()
                            .map(|(p, f)| format!("{p}::{f}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    hint: "funnel all attribution for this enum through one classification \
                           function"
                        .to_string(),
                });
            }
        }
    }

    // (3) Per-function monotone first-mention order.
    // (path, fn) -> [(first_line, variant_index)]
    let mut per_fn: BTreeMap<(String, String), BTreeMap<usize, usize>> = BTreeMap::new();
    for (vi, v) in e.order.iter().enumerate() {
        for (path, func, line) in &mentions[v.as_str()] {
            let first = per_fn
                .entry((path.clone(), func.clone()))
                .or_default()
                .entry(vi)
                .or_insert(*line);
            if *line < *first {
                *first = *line;
            }
        }
    }
    for ((path, func), firsts) in &per_fn {
        let mut by_line: Vec<(usize, usize)> = firsts.iter().map(|(vi, ln)| (*ln, *vi)).collect();
        by_line.sort_unstable();
        for w in by_line.windows(2) {
            let ((_, prev_vi), (line, vi)) = (w[0], w[1]);
            if vi < prev_vi {
                out.push(Finding {
                    rule: RULE,
                    path: path.clone(),
                    line: line + 1,
                    message: format!(
                        "`{}::{}` is checked after `{}::{}` in `{func}`, inverting the paper \
                         precedence [{}]",
                        e.name,
                        e.order[vi],
                        e.name,
                        e.order[prev_vi],
                        e.order.join(" > ")
                    ),
                    hint: "higher-priority causes must be tested first so a cycle is charged \
                           to the binding constraint"
                        .to_string(),
                });
            }
        }
    }

    // (4) Counter funnel: no direct `.{snake}.inc(` bumps outside the
    // defining file.
    for v in &e.order {
        let bump = format!("{}.inc(", snake_case(v));
        for f in files {
            if f.path == def.path || !crate::in_model_crate(cfg, &f.path) {
                continue;
            }
            for (i, code) in f.code.iter().enumerate() {
                if f.in_test[i] || f.allowed_inline(i, RULE) {
                    continue;
                }
                if let Some(pos) = code.find(&bump) {
                    // Require a field access (`.bp_icnt.inc(`), not a
                    // coincidental identifier suffix.
                    let preceded_by_dot = pos > 0 && code.as_bytes()[pos - 1] == b'.';
                    if preceded_by_dot {
                        out.push(Finding {
                            rule: RULE,
                            path: f.path.clone(),
                            line: i + 1,
                            message: format!(
                                "stall counter `{}` bumped directly, bypassing `record({}::{v})`",
                                snake_case(v),
                                e.name
                            ),
                            hint: "all attribution goes through the record() funnel in the \
                                   defining file so precedence checks stay meaningful"
                                .to_string(),
                        });
                    }
                }
            }
        }
    }
}

/// 0-indexed line of `enum <name>` in the code view.
fn enum_decl_line(f: &SourceFile, name: &str) -> Option<usize> {
    f.code
        .iter()
        .position(|l| contains_token(l, "enum") && contains_token(l, name))
}

/// Variants of `enum <name>` in declaration order, with their 0-indexed
/// lines. Assumes the codebase style of one unit variant per line.
fn declared_variants(f: &SourceFile, name: &str) -> Vec<(String, usize)> {
    let Some(start) = enum_decl_line(f, name) else {
        return Vec::new();
    };
    let mut variants = Vec::new();
    let mut depth = 0i64;
    let mut opened = false;
    for (i, line) in f.code.iter().enumerate().skip(start) {
        if opened && depth == 1 {
            let ident: String = line
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if ident.chars().next().is_some_and(char::is_uppercase) {
                variants.push((ident, i));
            }
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            break;
        }
    }
    variants
}

fn variant_decl_line(declared: &[(String, usize)], v: &str) -> Option<usize> {
    declared.iter().find(|(name, _)| name == v).map(|(_, i)| *i)
}

/// `BpIcnt` -> `bp_icnt` (the counter-field naming convention).
fn snake_case(v: &str) -> String {
    let mut out = String::new();
    for (i, c) in v.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snake_case_matches_field_convention() {
        assert_eq!(snake_case("BpIcnt"), "bp_icnt");
        assert_eq!(snake_case("Port"), "port");
        assert_eq!(snake_case("StrAlu"), "str_alu");
    }

    #[test]
    fn parses_declared_variants() {
        let f = SourceFile::parse(
            "crates/cache/src/stall.rs",
            "/// docs\npub enum L2StallKind {\n    /// a\n    BpIcnt,\n    Port,\n}\n",
        );
        let vs = declared_variants(&f, "L2StallKind");
        assert_eq!(
            vs.iter().map(|(v, _)| v.as_str()).collect::<Vec<_>>(),
            vec!["BpIcnt", "Port"]
        );
    }
}
