//! R9 — event-bound completeness. A component that advertises a
//! fast-forward idle probe (`fn next_event_bound`) is promising the
//! event-driven run loop that its quiet windows can be *skipped*, which
//! requires the matching bulk-replay hook (`fn skip_cycles`, or
//! `fn skip_idle` for the SIMT core's stall-classified variant) in the
//! same file. A probe without a skip hook is a latent correctness trap:
//! the scheduler would park the component and have no way to replay the
//! owed quiet cycles at wake time, silently desynchronizing its clock and
//! per-cycle statistics from the naive oracle.

use crate::config::LintConfig;
use crate::source::{contains_token, SourceFile};
use crate::Finding;

pub const RULE: &str = "R9";

/// Accepted bulk-replay hook names (either satisfies the rule).
const SKIP_HOOKS: &[&str] = &["fn skip_cycles", "fn skip_idle"];

pub fn check(cfg: &LintConfig, f: &SourceFile, out: &mut Vec<Finding>) {
    if !crate::in_model_crate(cfg, &f.path) {
        return;
    }
    let has_hook = f
        .code
        .iter()
        .enumerate()
        .any(|(i, code)| !f.in_test[i] && SKIP_HOOKS.iter().any(|h| contains_token(code, h)));
    if has_hook {
        return;
    }
    for (i, code) in f.code.iter().enumerate() {
        if f.in_test[i] {
            continue;
        }
        if contains_token(code, "fn next_event_bound") {
            out.push(Finding {
                rule: RULE,
                path: f.path.clone(),
                line: i + 1,
                message: "`next_event_bound` probe without a `skip_cycles`/`skip_idle` replay \
                          hook in the same file"
                    .to_string(),
                hint: "a quiet probe lets the event scheduler park this component; implement \
                       the bulk skip hook that replays k quiescent cycles (clock advance plus \
                       any per-cycle accounting the naive loop would have done) so wakes stay \
                       bit-identical to the one-tick oracle"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LintConfig;

    fn cfg() -> LintConfig {
        LintConfig::parse("[lint]\nmodel_crates = [\"model\"]\n").unwrap()
    }

    fn run(path: &str, text: &str) -> Vec<Finding> {
        let f = SourceFile::parse(path, text);
        let mut out = Vec::new();
        check(&cfg(), &f, &mut out);
        out
    }

    #[test]
    fn probe_without_hook_is_flagged() {
        let src = "impl Foo {\n    pub fn next_event_bound(&self) -> EventBound {\n        \
                   EventBound::Busy\n    }\n}\n";
        let out = run("crates/model/src/foo.rs", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "R9");
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn probe_with_skip_cycles_is_clean() {
        let src = "impl Foo {\n    pub fn next_event_bound(&self) -> EventBound {\n        \
                   EventBound::Busy\n    }\n    pub fn skip_cycles(&mut self, k: u64) {}\n}\n";
        assert!(run("crates/model/src/foo.rs", src).is_empty());
    }

    #[test]
    fn probe_with_skip_idle_is_clean() {
        let src = "impl Core {\n    pub fn next_event_bound(&self) -> CoreIdleProbe {\n        \
                   CoreIdleProbe::Busy\n    }\n    pub fn skip_idle(&mut self, k: u64) {}\n}\n";
        assert!(run("crates/model/src/core.rs", src).is_empty());
    }

    #[test]
    fn test_code_and_foreign_crates_are_ignored() {
        let probe_only = "pub fn next_event_bound() {}\n";
        assert!(run("crates/other/src/foo.rs", probe_only).is_empty());
        let in_tests = "#[cfg(test)]\nmod tests {\n    fn next_event_bound() {}\n}\n";
        assert!(run("crates/model/src/foo.rs", in_tests).is_empty());
    }

    #[test]
    fn hook_mentions_in_comments_do_not_count() {
        // The hook must be real code: a comment naming `fn skip_cycles`
        // lives in the masked-out view and cannot satisfy the rule.
        let src = "// see fn skip_cycles\npub fn next_event_bound() {}\n";
        let out = run("crates/model/src/foo.rs", src);
        assert_eq!(out.len(), 1);
    }
}
