//! R1 — determinism: model crates may not reach for nondeterministic
//! collections, wall-clock time, or unseeded randomness. A simulation run
//! must be a pure function of (config, seed); `HashMap` iteration order and
//! `Instant::now` both break byte-identical replay (the property the
//! determinism regression test pins down).

use crate::config::LintConfig;
use crate::source::{contains_token, SourceFile};
use crate::Finding;

pub const RULE: &str = "R1";

/// `(token, hint, rng_class)`; `rng_class` tokens are legitimate inside
/// the one sanctioned RNG module (`gmh_types::rng`).
const BANNED: &[(&str, &str, bool)] = &[
    (
        "HashMap",
        "use std::collections::BTreeMap — HashMap iteration order varies per process and \
         makes runs irreproducible",
        false,
    ),
    (
        "HashSet",
        "use std::collections::BTreeSet — HashSet iteration order varies per process and \
         makes runs irreproducible",
        false,
    ),
    (
        "Instant",
        "model time must come from the simulation clock (gmh_types::clock), never wall time",
        false,
    ),
    (
        "SystemTime",
        "model time must come from the simulation clock (gmh_types::clock), never wall time",
        false,
    ),
    (
        "thread_rng",
        "draw randomness from the seeded generator in gmh_types::rng",
        true,
    ),
    (
        "from_entropy",
        "seed explicitly from the config; entropy-seeded RNGs make runs irreproducible",
        true,
    ),
    (
        "RandomState",
        "hasher randomization is per-process nondeterminism; use BTreeMap or a fixed hasher",
        false,
    ),
    // Shared-mutable-state primitives. The parallel scheduler is
    // ownership-passing by design (core/src/par.rs: shards move over
    // channels, exclusively owned wherever they are mutated); a lock in
    // model code means two threads can observe the same state under an
    // OS-scheduled interleaving — exactly the nondeterminism R1 exists to
    // keep out of the cycle accounting.
    (
        "Mutex",
        "model state must be moved, not shared: pass ownership over channels (see \
         core/src/par.rs); lock-protected state admits scheduler-dependent interleavings",
        false,
    ),
    (
        "RwLock",
        "model state must be moved, not shared: pass ownership over channels (see \
         core/src/par.rs); lock-protected state admits scheduler-dependent interleavings",
        false,
    ),
    (
        "Condvar",
        "express barriers as channel receives (ParPool::collect blocks until every shard \
         is home), never ad-hoc condition variables over shared state",
        false,
    ),
];

pub fn check(cfg: &LintConfig, f: &SourceFile, out: &mut Vec<Finding>) {
    if !crate::in_model_crate(cfg, &f.path) {
        return;
    }
    let is_rng_home = f.path.ends_with("types/src/rng.rs");
    for (i, code) in f.code.iter().enumerate() {
        if f.in_test[i] {
            continue;
        }
        for (tok, hint, rng_class) in BANNED {
            if *rng_class && is_rng_home {
                continue;
            }
            if contains_token(code, tok) {
                out.push(Finding {
                    rule: RULE,
                    path: f.path.clone(),
                    line: i + 1,
                    message: format!("nondeterminism hazard: `{tok}` in a model crate"),
                    hint: (*hint).to_string(),
                });
            }
        }
    }
}
