//! The six invariant rules. Each `check` pushes [`crate::Finding`]s;
//! allowlist filtering (inline directives are rule-local, `lint.toml`
//! entries are applied centrally in [`crate::run`]).

pub mod alloc;
pub mod casts;
pub mod determinism;
pub mod panics;
pub mod queues;
pub mod stalls;
