//! The nine invariant rules. Each `check` pushes [`crate::Finding`]s
//! *unfiltered*; suppression (inline directives and `lint.toml` entries)
//! is applied centrally in [`crate::run`] so the audit can see what every
//! allowlist entry actually covers. The one exception is R5, which honors
//! inline directives while collecting stall mentions (a suppressed
//! mention must not count toward its cross-file checks).

pub mod alloc;
pub mod casts;
pub mod determinism;
pub mod events;
pub mod panics;
pub mod queues;
pub mod shards;
pub mod stalls;
pub mod units;
