//! R8 — time-unit consistency. The simulator carries three time
//! representations: wall picoseconds (`Picos`, `*_ps`), domain cycle
//! counts (`*_cycles`), and domain tick indices (`*_ticks`). Mixing them
//! in arithmetic silently produces garbage latencies (a picosecond
//! compared against a cycle count is off by the clock period), so:
//!
//! 1. identifiers (and fields, and `let` bindings typed `Picos` or
//!    initialized from a single-unit expression) form *unit classes* by
//!    suffix — `_ps`, `_cycles`/`_cycle`/`_cyc`, `_ticks`/`_tick`;
//! 2. an arithmetic or comparison operator joining two classes on one
//!    statement is an error unless the statement calls a sanctioned
//!    `ClockDomains` conversion function (`lint.toml [r8] convert_fns`),
//!    or lives in the conversion home (`clock.rs` itself);
//! 3. a bare non-zero numeric literal assigned into a unit-tagged field
//!    or binding outside the config/preset files is an error — magic time
//!    constants belong in configuration, expressed in a named unit.
//!
//! Identifiers in call position (`icnt_tick(..)`) are function names, not
//! time values, and SCREAMING_CASE constants (conversion factors like
//! `PS_PER_CYCLE`) are exempt: both would otherwise drown the rule in
//! false positives. What the lexical view cannot prove is left to the
//! runtime suites (see DESIGN.md §7).

use crate::config::{LintConfig, R8Config};
use crate::dataflow::FnFlow;
use crate::source::SourceFile;
use crate::Finding;

pub const RULE: &str = "R8";

/// One time-unit class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Wall picoseconds.
    Ps,
    /// Clock-domain cycle counts.
    Cycles,
    /// Tick indices of the interleaved clock.
    Ticks,
}

impl Unit {
    fn name(self) -> &'static str {
        match self {
            Unit::Ps => "ps",
            Unit::Cycles => "cycles",
            Unit::Ticks => "ticks",
        }
    }
}

/// The unit class of an identifier, from its suffix. Lowercase
/// identifiers only: SCREAMING_CASE constants are conversion factors.
pub fn ident_unit(ident: &str) -> Option<Unit> {
    if ident.chars().any(|c| c.is_uppercase()) {
        return None;
    }
    // `bytes_per_cycle`-style identifiers are *rates* (a quantity divided
    // by a time), not times; they carry no unit class of their own.
    if ident.contains("_per_") {
        return None;
    }
    let suffix_is = |s: &str| ident == s || ident.ends_with(&format!("_{s}"));
    if suffix_is("ps") {
        Some(Unit::Ps)
    } else if suffix_is("cycles") || suffix_is("cycle") || suffix_is("cyc") {
        Some(Unit::Cycles)
    } else if suffix_is("ticks") || suffix_is("tick") {
        Some(Unit::Ticks)
    } else {
        None
    }
}

/// A unit-classed identifier occurrence in value position.
struct Occurrence {
    col: usize,
    len: usize,
    name: String,
    unit: Unit,
}

pub fn check(cfg: &LintConfig, f: &SourceFile, out: &mut Vec<Finding>) {
    let Some(r8) = &cfg.r8 else {
        return;
    };
    if !crate::in_model_crate(cfg, &f.path) {
        return;
    }
    if r8.conversion_home.iter().any(|h| f.path.ends_with(h)) {
        return;
    }
    let literal_ok = r8.literal_files.iter().any(|h| f.path.ends_with(h));

    // Statement-level facts need function context for binding inference;
    // lines outside any fn (consts, field decls) are scanned standalone.
    let mut checked = vec![false; f.code.len()];
    for (_, start, end) in &f.functions {
        let end = (*end).min(f.code.len().saturating_sub(1));
        if f.in_test[*start] {
            for c in checked.iter_mut().take(end + 1).skip(*start) {
                *c = true;
            }
            continue;
        }
        let flow = FnFlow::build(f, *start, end);
        for (i, c) in checked.iter_mut().enumerate().take(end + 1).skip(*start) {
            *c = true;
            check_line(r8, f, i, Some(&flow), literal_ok, out);
        }
    }
    for (i, c) in checked.iter().enumerate() {
        if !*c {
            check_line(r8, f, i, None, literal_ok, out);
        }
    }
}

fn check_line(
    r8: &R8Config,
    f: &SourceFile,
    i: usize,
    flow: Option<&FnFlow>,
    literal_ok: bool,
    out: &mut Vec<Finding>,
) {
    if f.in_test[i] {
        return;
    }
    let code = &f.code[i];
    if code.trim().is_empty() {
        return;
    }
    // A sanctioned conversion call anywhere on the statement excuses it.
    if r8.convert_fns.iter().any(|c| {
        crate::source::find_token(code, c)
            .is_some_and(|p| f.code[i][p + c.len()..].starts_with('('))
    }) {
        return;
    }
    // The conversion may also flow in through a named factor:
    // `let core_period = clocks.domain(..).period_ps();` followed by
    // `cycles * core_period` is the sanctioned pattern with the period
    // applied exactly once — exempt any statement using such a binding.
    if let Some(fl) = flow {
        if ident_tokens(code).iter().any(|id| {
            fl.binding_at(id, i).is_some_and(|b| {
                r8.convert_fns
                    .iter()
                    .any(|c| crate::source::contains_token(&b.init, c))
            })
        }) {
            return;
        }
    }

    let occs = occurrences(r8, f, code, i, flow);

    // (2) mixed-unit arithmetic/comparison between adjacent occurrences.
    for w in occs.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        if a.unit == b.unit {
            continue;
        }
        let between = &code[a.col + a.len..b.col];
        if !joins_arithmetically(between) {
            continue;
        }
        out.push(Finding {
            rule: RULE,
            path: f.path.clone(),
            line: i + 1,
            message: format!(
                "`{}` ({}) and `{}` ({}) mixed in arithmetic/comparison without a sanctioned \
                 conversion",
                a.name,
                a.unit.name(),
                b.name,
                b.unit.name()
            ),
            hint: "convert through ClockDomains (lint.toml [r8] convert_fns) so the clock \
                   period is applied exactly once; unit suffixes are the contract"
                .to_string(),
        });
    }

    // (3) bare non-zero literal into a unit-tagged field or binding.
    if !literal_ok {
        for occ in &occs {
            let after = code[occ.col + occ.len..].trim_start();
            let rhs = if let Some(r) = after.strip_prefix('=') {
                if r.starts_with('=') {
                    continue; // `==` comparison, not assignment
                }
                r
            } else if let Some(r) = after.strip_prefix(':') {
                // struct-literal field init (type ascriptions put a type,
                // not a literal, here — the literal test below holds).
                r
            } else {
                continue;
            };
            let rhs = rhs.trim_start();
            let lit: String = rhs
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '_')
                .collect();
            if lit.is_empty() {
                continue;
            }
            let terminated = rhs[lit.len()..]
                .chars()
                .next()
                .is_none_or(|c| matches!(c, ';' | ',' | ' ' | ')' | '}'));
            let value: u64 = lit.replace('_', "").parse().unwrap_or(0);
            if terminated && value != 0 {
                out.push(Finding {
                    rule: RULE,
                    path: f.path.clone(),
                    line: i + 1,
                    message: format!(
                        "bare literal `{lit}` assigned into unit-tagged `{}` ({})",
                        occ.name,
                        occ.unit.name()
                    ),
                    hint: "magic time constants live in config/presets (lint.toml [r8] \
                           literal_files) under a named, unit-suffixed field"
                        .to_string(),
                });
            }
        }
    }
}

/// Unit-classed identifiers in value position on `code`, left to right.
fn occurrences(
    r8: &R8Config,
    f: &SourceFile,
    code: &str,
    line: usize,
    flow: Option<&FnFlow>,
) -> Vec<Occurrence> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut k = 0;
    while k < bytes.len() {
        let c = bytes[k] as char;
        if !(c.is_ascii_alphabetic() || c == '_') {
            k += 1;
            continue;
        }
        let start = k;
        while k < bytes.len() && {
            let c = bytes[k] as char;
            c.is_ascii_alphanumeric() || c == '_'
        } {
            k += 1;
        }
        let ident = &code[start..k];
        // Call position (`foo(`, `foo!(`) names a function/macro, not a
        // value; `::` paths name types/modules.
        let next = bytes.get(k).copied().unwrap_or(b' ');
        if next == b'(' || next == b'!' {
            continue;
        }
        if code[k..].trim_start().starts_with("::") {
            continue;
        }
        let unit = ident_unit(ident).or_else(|| {
            // Untagged binding whose declared type or initializer fixes a
            // class — the dataflow half of the rule.
            flow.and_then(|fl| fl.binding_at(ident, line))
                .and_then(|b| binding_unit(r8, f, b))
        });
        if let Some(unit) = unit {
            out.push(Occurrence {
                col: start,
                len: ident.len(),
                name: ident.to_string(),
                unit,
            });
        }
    }
    out
}

/// The unit class of a binding: ascribed type first (`Picos` → ps), then
/// the initializer's single class when the initializer itself performs no
/// sanctioned conversion.
fn binding_unit(r8: &R8Config, f: &SourceFile, b: &crate::dataflow::Binding) -> Option<Unit> {
    let _ = f;
    if let Some(ty) = &b.ty {
        if r8
            .ps_types
            .iter()
            .any(|t| crate::source::contains_token(ty, t))
        {
            return Some(Unit::Ps);
        }
    }
    if r8
        .convert_fns
        .iter()
        .any(|c| crate::source::contains_token(&b.init, c))
    {
        return None;
    }
    let mut classes: Vec<Unit> = Vec::new();
    for ident in ident_tokens(&b.init) {
        if let Some(u) = ident_unit(&ident) {
            if !classes.contains(&u) {
                classes.push(u);
            }
        }
    }
    (classes.len() == 1).then(|| classes[0])
}

/// All identifier tokens of a text.
fn ident_tokens(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars().chain(std::iter::once(' ')) {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    out
}

/// Whether the text between two unit occurrences joins them in one
/// arithmetic/comparison expression: it must contain a joining operator
/// and no expression separator (`,`, `;`) — separated operands (distinct
/// call arguments, distinct statements) are unrelated.
fn joins_arithmetically(between: &str) -> bool {
    if between.contains(',') || between.contains(';') {
        return false;
    }
    let ops = [
        "+", "-", "*", "/", "%", "<", ">", "<=", ">=", "==", "!=", ".min(", ".max(",
    ];
    let mut t = between;
    // `->` and `=>` and `::` are not arithmetic.
    for noise in ["->", "=>", "::"] {
        if t.contains(noise) {
            return false;
        }
    }
    // A bare `=` (assignment) joins the two sides into one unit claim.
    if let Some(p) = t.find('=') {
        let bytes = t.as_bytes();
        let prev = if p > 0 { bytes[p - 1] } else { b' ' };
        let next = bytes.get(p + 1).copied().unwrap_or(b' ');
        if next != b'=' && !matches!(prev, b'=' | b'<' | b'>' | b'!') {
            t = &t[p + 1..];
            let _ = t;
            return true;
        }
    }
    ops.iter().any(|op| between.contains(op))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffixes_classify() {
        assert_eq!(ident_unit("now_ps"), Some(Unit::Ps));
        assert_eq!(ident_unit("ps"), Some(Unit::Ps));
        assert_eq!(ident_unit("core_cycles"), Some(Unit::Cycles));
        assert_eq!(ident_unit("cyc"), Some(Unit::Cycles));
        assert_eq!(ident_unit("next_tick"), Some(Unit::Ticks));
        assert_eq!(ident_unit("PS_PER_CYCLE"), None, "constants are factors");
        assert_eq!(
            ident_unit("bus_bytes_per_cycle"),
            None,
            "rates are not times"
        );
        assert_eq!(ident_unit("ops"), None, "suffix needs its own word");
        assert_eq!(ident_unit("warps"), None);
    }

    #[test]
    fn joining_requires_an_operator_and_no_separator() {
        assert!(joins_arithmetically(" + "));
        assert!(joins_arithmetically(" .min( "));
        assert!(joins_arithmetically(" = "));
        assert!(!joins_arithmetically(", "));
        assert!(!joins_arithmetically(" "));
        assert!(!joins_arithmetically("; let x = "));
    }
}
