//! R4 — panic hygiene: `.unwrap()`/`.expect(...)` in model code is only
//! acceptable when the surrounding invariant genuinely rules the failure
//! out, and that argument must be written down: an `// INVARIANT: ...`
//! comment on the same line or the two lines above. Everything else should
//! propagate a `Result`.

use crate::config::LintConfig;
use crate::source::SourceFile;
use crate::Finding;

pub const RULE: &str = "R4";

pub fn check(cfg: &LintConfig, f: &SourceFile, out: &mut Vec<Finding>) {
    if !crate::in_model_crate(cfg, &f.path) {
        return;
    }
    for (i, code) in f.code.iter().enumerate() {
        if f.in_test[i] {
            continue;
        }
        let call = if code.contains(".unwrap()") {
            ".unwrap()"
        } else if code.contains(".expect(") {
            ".expect(..)"
        } else {
            continue;
        };
        // The justification may sit above the statement rather than the
        // `.expect` line itself (builder chains span lines), so walk up to
        // the statement start and accept a comment within two lines above.
        let start = statement_start(f, i);
        if f.comment_in_range(start.saturating_sub(2), i, "INVARIANT:") {
            continue;
        }
        out.push(Finding {
            rule: RULE,
            path: f.path.clone(),
            line: i + 1,
            message: format!("unjustified `{call}` in a model crate"),
            hint: "state why this cannot fail with an `// INVARIANT: ...` comment (same line \
                   or up to two lines above the statement), or propagate the error"
                .to_string(),
        });
    }
}

/// First line of the statement containing line `i`: walks upward while the
/// previous code line looks like a continuation (does not end a statement
/// or open a block). Comment-only lines are blank in the code view and are
/// walked through.
fn statement_start(f: &SourceFile, i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        let prev = f.code[j - 1].trim_end();
        if prev.ends_with(';') || prev.ends_with('{') || prev.ends_with('}') {
            break;
        }
        j -= 1;
    }
    j
}
