//! R7 — shard isolation. The parallel scheduler (core/src/par.rs) is
//! correct only because shards are *moved*, never shared: a worker owns a
//! shard exclusively for one region, the coordinator owns every shard
//! between regions, and the `collect()` barrier separates the two. This
//! rule machine-checks the conventions that proof rests on:
//!
//! 1. **state hygiene** — no type reachable from the state root (`Shard`)
//!    through field types may hold a sharing or escape primitive
//!    (`Arc`, `Rc`, raw pointers, `UnsafeCell`);
//! 2. **region-path purity** — no function reachable from the shard-region
//!    entry points (`run_region`) through the call graph may spawn
//!    threads, touch `Arc`/`Rc`, dereference raw pointers, or read
//!    `static mut` state;
//! 3. **spawn confinement** — `thread::spawn` in model crates lives only
//!    in the sanctioned pool file;
//! 4. **single-producer shard channels** — a channel whose declared
//!    payload carries shard state must keep exactly one producer: its
//!    sender endpoint is never cloned;
//! 5. **move-by-value across the barrier** — in any function that both
//!    dispatches shards and collects them, the dispatched value must be
//!    moved (never passed by `&`/`&mut`), and a dispatched binding may not
//!    be touched again until it is reassigned from `collect()`.
//!
//! The checks are source-level and conservative; the runtime equivalence
//! suite (`tests/parallel_equiv.rs`) remains the oracle for what the
//! lexical view cannot see (see DESIGN.md §7).

use std::collections::BTreeSet;

use crate::config::LintConfig;
use crate::dataflow::{FnFlow, UseKind};
use crate::index::{type_idents, ItemIndex};
use crate::source::{contains_token, SourceFile};
use crate::Finding;

pub const RULE: &str = "R7";

/// Sharing/escape primitives banned in shard-state fields and on the
/// region path: `(token, what)`.
const SHARED: &[(&str, &str)] = &[
    ("Arc", "`Arc` (shared ownership)"),
    ("Rc", "`Rc` (shared ownership)"),
    (
        "UnsafeCell",
        "`UnsafeCell` (interior mutability outside the borrow checker)",
    ),
];

pub fn check(cfg: &LintConfig, files: &[SourceFile], idx: &ItemIndex, out: &mut Vec<Finding>) {
    let Some(r7) = &cfg.r7 else {
        return;
    };
    let reachable = idx.reachable_types(&r7.state_root);

    check_state_fields(cfg, files, idx, &reachable, out);
    check_region_path(cfg, files, idx, r7, &reachable, out);
    check_spawn_confinement(cfg, files, &r7.pool_file, out);
    check_shard_channels(cfg, files, idx, &reachable, out);
    check_barrier_moves(cfg, files, out);
}

/// (1) No sharing primitive or raw pointer in any field of a type
/// reachable from the state root.
fn check_state_fields(
    cfg: &LintConfig,
    files: &[SourceFile],
    idx: &ItemIndex,
    reachable: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    for t in &idx.types {
        if !reachable.contains(&t.name) || !crate::in_model_crate(cfg, &files[t.file].path) {
            continue;
        }
        for field in &t.fields {
            let mut hits: Vec<&str> = SHARED
                .iter()
                .filter(|(tok, _)| type_idents(&field.ty).iter().any(|id| id == tok))
                .map(|(_, what)| *what)
                .collect();
            if field.ty.contains("*mut") || field.ty.contains("*const") {
                hits.push("a raw pointer");
            }
            for what in hits {
                out.push(Finding {
                    rule: RULE,
                    path: files[t.file].path.clone(),
                    line: field.line + 1,
                    message: format!(
                        "shard state `{}::{}` holds {what}; types reachable from the shard \
                         root must be exclusively owned",
                        t.name, field.name
                    ),
                    hint: "shards move over channels with single ownership; replace the shared \
                           handle with owned state merged at the collect() barrier"
                        .to_string(),
                });
            }
        }
    }
}

/// (2) Nothing reachable from the region entry fns may share or spawn.
fn check_region_path(
    cfg: &LintConfig,
    files: &[SourceFile],
    idx: &ItemIndex,
    r7: &crate::config::R7Config,
    reachable: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    let mut roots = Vec::new();
    for name in &r7.region_fns {
        if let Some(cands) = idx.fn_by_name.get(name) {
            roots.extend_from_slice(cands);
        }
    }
    // Follow calls only into free functions and methods of shard-state
    // types (plus the root's own impl types), staying inside model crates.
    let admit = |fd: &crate::index::FnDef| -> bool {
        if !crate::in_model_crate(cfg, &files[fd.file].path) {
            return false;
        }
        match &fd.self_ty {
            None => true,
            Some(ty) => reachable.contains(ty),
        }
    };
    let on_path = idx.reachable_fns(&roots, &admit);
    for &fi in &on_path {
        let fd = &idx.fns[fi];
        let f = &files[fd.file];
        if !crate::in_model_crate(cfg, &f.path) {
            continue;
        }
        for li in fd.start..=fd.end.min(f.code.len().saturating_sub(1)) {
            if f.in_test[li] {
                continue;
            }
            let code = &f.code[li];
            for (tok, what) in SHARED {
                if contains_token(code, tok) {
                    out.push(region_purity_finding(f, li, &fd.name, what));
                }
            }
            if code.contains("thread::spawn") {
                out.push(region_purity_finding(f, li, &fd.name, "`thread::spawn`"));
            }
            if contains_token(code, "static") && code.contains("static mut") {
                out.push(region_purity_finding(f, li, &fd.name, "`static mut`"));
            }
        }
    }
}

fn region_purity_finding(f: &SourceFile, li: usize, fn_name: &str, what: &str) -> Finding {
    Finding {
        rule: RULE,
        path: f.path.clone(),
        line: li + 1,
        message: format!(
            "{what} inside `{fn_name}`, which is reachable from the shard-region entry points"
        ),
        hint: "region code runs with exclusive shard ownership on worker threads; sharing \
               primitives there reintroduce the interleavings the ownership-passing design \
               exists to rule out"
            .to_string(),
    }
}

/// (3) `thread::spawn` in model crates only in the pool file. `static mut`
/// is banned in model crates outright (it is shared state by definition).
fn check_spawn_confinement(
    cfg: &LintConfig,
    files: &[SourceFile],
    pool_file: &str,
    out: &mut Vec<Finding>,
) {
    for f in files {
        if !crate::in_model_crate(cfg, &f.path) {
            continue;
        }
        let is_pool = !pool_file.is_empty() && f.path.ends_with(pool_file);
        for (i, code) in f.code.iter().enumerate() {
            if f.in_test[i] {
                continue;
            }
            if !is_pool && code.contains("thread::spawn") {
                out.push(Finding {
                    rule: RULE,
                    path: f.path.clone(),
                    line: i + 1,
                    message: "`thread::spawn` outside the sanctioned worker pool".to_string(),
                    hint: format!(
                        "all model-crate threading goes through the ownership-passing pool in \
                         `{pool_file}`; justify service-layer exceptions in lint.toml"
                    ),
                });
            }
            if code.contains("static mut") {
                out.push(Finding {
                    rule: RULE,
                    path: f.path.clone(),
                    line: i + 1,
                    message: "`static mut` in a model crate is shared mutable state".to_string(),
                    hint: "thread the state through the owning struct; shard state must be \
                           exclusively owned wherever it is mutated"
                        .to_string(),
                });
            }
        }
    }
}

/// (4) A channel whose declared payload mentions shard state keeps one
/// producer: its sender is never cloned.
fn check_shard_channels(
    cfg: &LintConfig,
    files: &[SourceFile],
    idx: &ItemIndex,
    reachable: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    let _ = idx;
    for f in files {
        if !crate::in_model_crate(cfg, &f.path) {
            continue;
        }
        for (name, start, end) in &f.functions {
            if f.in_test[*start] {
                continue;
            }
            let flow = FnFlow::build(f, *start, *end);
            for ch in &flow.channels {
                let carries_shard = type_idents(&ch.payload)
                    .iter()
                    .any(|id| reachable.contains(id));
                if !carries_shard {
                    continue;
                }
                for u in flow.uses_of(f, &ch.sender) {
                    if u.kind == UseKind::Method && u.method == "clone" {
                        out.push(Finding {
                            rule: RULE,
                            path: f.path.clone(),
                            line: u.line + 1,
                            message: format!(
                                "shard channel sender `{}` cloned in `{name}` — a worker \
                                 channel must have exactly one producer",
                                ch.sender
                            ),
                            hint: "one coordinator produces into each worker channel; a second \
                                   producer makes the dispatch order scheduler-dependent"
                                .to_string(),
                        });
                    }
                }
            }
        }
    }
}

/// (5) Dispatched shards move by value and stay untouched until the
/// matching `collect()` reassignment.
fn check_barrier_moves(cfg: &LintConfig, files: &[SourceFile], out: &mut Vec<Finding>) {
    for f in files {
        if !crate::in_model_crate(cfg, &f.path) {
            continue;
        }
        for (name, start, end) in &f.functions {
            if f.in_test[*start] {
                continue;
            }
            let end = (*end).min(f.code.len().saturating_sub(1));
            let has_dispatch = (*start..=end).any(|i| f.code[i].contains(".dispatch("));
            let has_collect = (*start..=end).any(|i| f.code[i].contains(".collect()"));
            if !has_dispatch || !has_collect {
                continue;
            }
            let flow = FnFlow::build(f, *start, end);
            for i in *start..=end {
                let code = &f.code[i];
                let Some(pos) = code.find(".dispatch(") else {
                    continue;
                };
                let args = &code[pos + ".dispatch(".len()..];
                // (5a) no borrowed arguments to dispatch.
                if args.contains('&') {
                    out.push(Finding {
                        rule: RULE,
                        path: f.path.clone(),
                        line: i + 1,
                        message: format!(
                            "shard dispatched by reference in `{name}` — shards must move by \
                             value across the collect() barrier"
                        ),
                        hint: "take the shard out with mem::replace (leaving a hollow \
                               placeholder) and send the owned value; a borrow aliases state \
                               the worker mutates"
                            .to_string(),
                    });
                }
                // (5b) the moved binding stays untouched until reassigned
                // from collect(). The last bare identifier in the argument
                // list is the moved shard.
                let Some(moved) = last_ident(args) else {
                    continue;
                };
                if flow.binding_at(&moved, i).is_none() {
                    continue;
                }
                for u in flow.uses_of(f, &moved) {
                    if u.line <= i {
                        continue;
                    }
                    // A shadowing `let` rebinds the name: later uses refer
                    // to the fresh shard, not the dispatched one.
                    if flow.binding_at(&moved, u.line).is_some_and(|b| b.line > i) {
                        break;
                    }
                    let text = &f.code[u.line];
                    if u.kind == UseKind::Reassign && text.contains(".collect()") {
                        break;
                    }
                    out.push(Finding {
                        rule: RULE,
                        path: f.path.clone(),
                        line: u.line + 1,
                        message: format!(
                            "`{moved}` used after being dispatched in `{name}` and before the \
                             collect() barrier returns it — shard state is aliased across the \
                             barrier"
                        ),
                        hint: "between dispatch and collect the worker owns the shard; touch \
                               it only after reassigning it from pool.collect()"
                            .to_string(),
                    });
                    break;
                }
            }
        }
    }
}

/// The last bare identifier of an argument list (the moved operand of
/// `pool.dispatch(w, region, sh)`).
fn last_ident(args: &str) -> Option<String> {
    let inner = args.trim_end().trim_end_matches(';');
    let inner = inner.strip_suffix(')').unwrap_or(inner);
    let last = inner.rsplit(',').next()?.trim();
    (!last.is_empty()
        && last.chars().all(|c| c.is_alphanumeric() || c == '_')
        && last
            .chars()
            .next()
            .is_some_and(|c| c.is_lowercase() || c == '_'))
    .then(|| last.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_ident_extracts_moved_operand() {
        assert_eq!(last_ident("w - 1, region, sh);"), Some("sh".to_string()));
        assert_eq!(last_ident("w, region, self.shards[w]);"), None);
        assert_eq!(last_ident("w, region, &sh);"), None);
    }
}
