//! Suppression audit. Allowlists rot: the code a `[[allow]]` entry or an
//! inline `// lint: allow(Rn)` directive was written for gets refactored
//! away, and the suppression lingers — a standing invitation to
//! reintroduce the violation silently. The audit closes that hole by
//! running the rules *unfiltered* and checking that every suppression
//! still earns its keep: a `lint.toml` entry must match at least one raw
//! finding, and an inline directive must sit on (or directly above) a
//! line that raises one. Anything stale is itself a finding, under the
//! pseudo-rule `AUDIT` — which no allowlist can suppress.
//!
//! One rule needs special treatment: R5 filters inline directives while
//! *collecting* stall-attribution mentions (a suppressed mention must not
//! count toward the single-site or ordering checks), so a directive it
//! honors leaves no raw finding behind. An inline `allow(R5)` is
//! therefore judged live when its guarded line actually mentions a
//! registered stall variant or bumps a stall counter.

use crate::config::LintConfig;
use crate::source::SourceFile;
use crate::Finding;

pub const RULE: &str = "AUDIT";

/// Rule ids an inline directive may name.
const KNOWN_RULES: &[&str] = &["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"];

/// Audits every suppression against the unfiltered findings `raw`.
pub fn check(cfg: &LintConfig, files: &[SourceFile], raw: &[Finding], out: &mut Vec<Finding>) {
    audit_toml_allows(cfg, files, raw, out);
    for f in files {
        audit_inline_directives(cfg, f, raw, out);
    }
}

/// A `[[allow]]` entry is live iff at least one raw finding matches its
/// (rule, file-suffix, contains) triple.
fn audit_toml_allows(
    cfg: &LintConfig,
    files: &[SourceFile],
    raw: &[Finding],
    out: &mut Vec<Finding>,
) {
    for a in &cfg.allows {
        let live = raw.iter().any(|fd| {
            fd.rule == a.rule
                && (a.file.is_empty() || fd.path.ends_with(&a.file))
                && (a.contains.is_empty() || {
                    let text = files
                        .iter()
                        .find(|f| f.path == fd.path)
                        .map_or("", |f| f.line(fd.line.saturating_sub(1)));
                    text.contains(&a.contains)
                })
        });
        if !live {
            out.push(Finding {
                rule: RULE,
                path: "lint.toml".to_string(),
                line: a.line,
                message: format!(
                    "stale [[allow]] entry: no current {} finding matches file `{}` contains \
                     `{}`",
                    a.rule, a.file, a.contains
                ),
                hint: "the code this suppression covered has moved or been fixed; delete the \
                       entry (or update its file/contains) so the allowlist only documents \
                       real exceptions"
                    .to_string(),
            });
        }
    }
}

/// An inline directive at 0-indexed line `d` guards code lines `d` and
/// `d+1` (same-line and next-line placement); it is live iff a raw
/// finding of its rule lands on one of those lines.
fn audit_inline_directives(
    cfg: &LintConfig,
    f: &SourceFile,
    raw: &[Finding],
    out: &mut Vec<Finding>,
) {
    for (d, comment) in f.comments.iter().enumerate() {
        // Doc comments (`///`, `//!`) talk *about* directives — rule docs,
        // examples in hints — they never are one.
        let line_text = f.line(d).trim_start();
        if line_text.starts_with("///") || line_text.starts_with("//!") {
            continue;
        }
        let mut rest = comment.as_str();
        while let Some(pos) = rest.find("lint: allow(") {
            rest = &rest[pos + "lint: allow(".len()..];
            let Some(close) = rest.find(')') else {
                break;
            };
            let rule = rest[..close].trim().to_string();
            rest = &rest[close + 1..];

            // Only rule-shaped ids (`R` + digits) are directives; prose
            // placeholders like `Rn` are not.
            if !(rule.len() > 1
                && rule.starts_with('R')
                && rule[1..].chars().all(|c| c.is_ascii_digit()))
            {
                continue;
            }
            if !KNOWN_RULES.contains(&rule.as_str()) {
                out.push(Finding {
                    rule: RULE,
                    path: f.path.clone(),
                    line: d + 1,
                    message: format!("inline directive names unknown rule `{rule}`"),
                    hint: format!("known rules are {}", KNOWN_RULES.join(", ")),
                });
                continue;
            }
            let live = if rule == "R5" {
                r5_directive_live(cfg, f, d)
            } else {
                raw.iter().any(|fd| {
                    fd.rule == rule && fd.path == f.path && (fd.line == d + 1 || fd.line == d + 2)
                })
            };
            if !live {
                out.push(Finding {
                    rule: RULE,
                    path: f.path.clone(),
                    line: d + 1,
                    message: format!(
                        "stale inline directive: `lint: allow({rule})` suppresses nothing here"
                    ),
                    hint: "the guarded line no longer violates the rule; remove the directive \
                           so surviving ones keep meaning something"
                        .to_string(),
                });
            }
        }
    }
}

/// R5 honors inline directives during mention collection, so a live one
/// leaves no raw finding. It is live iff its guarded line mentions a
/// registered stall variant (`Enum::Variant`) or bumps a stall counter
/// (`.snake_case.inc(`).
fn r5_directive_live(cfg: &LintConfig, f: &SourceFile, d: usize) -> bool {
    let hi = (d + 1).min(f.code.len().saturating_sub(1));
    for i in d..=hi {
        let code = &f.code[i];
        for e in &cfg.stall_enums {
            for v in &e.order {
                if crate::source::find_token(code, &format!("{}::{}", e.name, v)).is_some() {
                    return true;
                }
                if code.contains(&format!(".{}.inc(", snake_case(v))) {
                    return true;
                }
            }
        }
    }
    false
}

/// `BpIcnt` -> `bp_icnt`, mirroring the counter-field convention R5 uses.
fn snake_case(v: &str) -> String {
    let mut out = String::new();
    for (i, c) in v.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Allow;

    fn cfg_with_allow(rule: &str, file: &str, contains: &str) -> LintConfig {
        LintConfig {
            model_crates: vec!["core".to_string()],
            allows: vec![Allow {
                rule: rule.to_string(),
                file: file.to_string(),
                contains: contains.to_string(),
                reason: "test".to_string(),
                line: 10,
            }],
            ..LintConfig::default()
        }
    }

    fn finding(rule: &'static str, path: &str, line: usize) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: String::new(),
            hint: String::new(),
        }
    }

    #[test]
    fn live_toml_entry_passes_stale_entry_flagged() {
        let f = SourceFile::parse("crates/core/src/sim.rs", "let m = Instant::now();\n");
        let cfg = cfg_with_allow("R1", "sim.rs", "Instant");
        let raw = vec![finding("R1", "crates/core/src/sim.rs", 1)];
        let mut out = Vec::new();
        check(&cfg, std::slice::from_ref(&f), &raw, &mut out);
        assert!(out.is_empty(), "matching entry is live: {out:?}");

        let mut out = Vec::new();
        check(&cfg, std::slice::from_ref(&f), &[], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "AUDIT");
        assert_eq!(out[0].path, "lint.toml");
        assert_eq!(out[0].line, 10);
    }

    #[test]
    fn stale_inline_directive_flagged_live_one_not() {
        let src = "// lint: allow(R3): fits\nlet a = b as u32;\nlet c = 1;\n// lint: allow(R4): x\nlet d = 2;\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let cfg = LintConfig {
            model_crates: vec!["core".to_string()],
            ..LintConfig::default()
        };
        // R3 fires on line 2 (guarded by the directive on line 1); nothing
        // fires near the R4 directive on line 4.
        let raw = vec![finding("R3", "crates/core/src/x.rs", 2)];
        let mut out = Vec::new();
        check(&cfg, std::slice::from_ref(&f), &raw, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("allow(R4)"));
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn unknown_rule_in_directive_flagged() {
        let f = SourceFile::parse("crates/core/src/x.rs", "// lint: allow(R99): huh\n");
        let cfg = LintConfig {
            model_crates: vec!["core".to_string()],
            ..LintConfig::default()
        };
        let mut out = Vec::new();
        check(&cfg, std::slice::from_ref(&f), &[], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("R99"));
    }

    #[test]
    fn r5_directive_live_when_variant_mentioned() {
        use crate::config::StallEnum;
        let src = "// lint: allow(R5): double mention is the funnel itself\n\
                   let k = L2StallKind::Port;\n";
        let f = SourceFile::parse("crates/cache/src/x.rs", src);
        let cfg = LintConfig {
            model_crates: vec!["cache".to_string()],
            stall_enums: vec![StallEnum {
                name: "L2StallKind".to_string(),
                file: "crates/cache/src/stall.rs".to_string(),
                order: vec!["BpIcnt".to_string(), "Port".to_string()],
            }],
            ..LintConfig::default()
        };
        let mut out = Vec::new();
        check(&cfg, std::slice::from_ref(&f), &[], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
