//! Per-function intraprocedural dataflow over the masked lexical view:
//! local bindings, moves, borrows and channel-endpoint usage.
//!
//! This is not a type checker — it recovers exactly the facts the
//! cross-file rules need and nothing more:
//!
//! - `let` bindings with their ascribed type and initializer text
//!   (multi-line initializers are collapsed up to the terminating `;`);
//! - tuple destructures of `mpsc::channel()`, recording which binding is
//!   the sender, which the receiver, and the declared payload type when
//!   the call carries a turbofish;
//! - per-binding use sites, classified as plain reads, `&`/`&mut`
//!   borrows, method receivers (`x.clone()`, `x.send(..)`), call
//!   arguments, or reassignments.
//!
//! The pass is line-based and conservative: shadowing rebinds a name at
//! its `let` line, and a use is attributed to the latest binding of that
//! name at or above the use line.

use crate::source::{find_token, SourceFile};

/// How a binding's name is used at one site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UseKind {
    /// Plain read (any appearance not matching a more specific kind).
    Read,
    /// `&name` shared borrow.
    Borrow,
    /// `&mut name` exclusive borrow.
    BorrowMut,
    /// `name.method(..)` — the method name is carried alongside.
    Method,
    /// `name = ..` reassignment (not `==`).
    Reassign,
}

/// One use site of a binding.
#[derive(Clone, Debug)]
pub struct Use {
    /// 0-indexed line of the use.
    pub line: usize,
    /// Byte column of the identifier on that line.
    pub col: usize,
    /// Classification.
    pub kind: UseKind,
    /// Method name when `kind == Method`, else empty.
    pub method: String,
}

/// One `let` binding in a function body.
#[derive(Clone, Debug)]
pub struct Binding {
    /// Bound name.
    pub name: String,
    /// 0-indexed line of the `let`.
    pub line: usize,
    /// Ascribed type text (`let x: Picos = ..`), if any.
    pub ty: Option<String>,
    /// Initializer text, collapsed across lines up to the `;`.
    pub init: String,
}

/// A destructured `mpsc::channel()` pair.
#[derive(Clone, Debug)]
pub struct ChannelPair {
    /// The sender binding name.
    pub sender: String,
    /// The receiver binding name.
    pub receiver: String,
    /// Payload type text from a `channel::<T>()` turbofish, if declared.
    pub payload: String,
    /// 0-indexed line of the creation.
    pub line: usize,
}

/// Dataflow facts for one function span.
#[derive(Debug, Default)]
pub struct FnFlow {
    /// All `let` bindings, in source order.
    pub bindings: Vec<Binding>,
    /// All channel pairs created in the body.
    pub channels: Vec<ChannelPair>,
    /// First line of the span.
    pub start: usize,
    /// Last line of the span (inclusive).
    pub end: usize,
}

impl FnFlow {
    /// Builds the facts for the function spanning `start..=end` in `f`.
    pub fn build(f: &SourceFile, start: usize, end: usize) -> FnFlow {
        let mut flow = FnFlow {
            start,
            end: end.min(f.code.len().saturating_sub(1)),
            ..FnFlow::default()
        };
        let mut i = start;
        while i <= flow.end {
            let line = &f.code[i];
            if let Some(pos) = find_token(line, "let") {
                let (stmt, last) = collapse_statement(&f.code, i, flow.end);
                parse_let(&stmt, &line[pos..], i, &mut flow);
                // Step one line (not past the statement) so nested `let`s
                // inside multi-line initializers are still seen.
                let _ = last;
            }
            i += 1;
        }
        flow
    }

    /// The latest binding of `name` declared at or before `line`, if any.
    pub fn binding_at(&self, name: &str, line: usize) -> Option<&Binding> {
        self.bindings
            .iter()
            .rfind(|b| b.name == name && b.line <= line)
    }

    /// All use sites of `name` within the span of `f`, excluding the
    /// declaring `let` lines of that name.
    pub fn uses_of(&self, f: &SourceFile, name: &str) -> Vec<Use> {
        let decl_lines: Vec<usize> = self
            .bindings
            .iter()
            .filter(|b| b.name == name)
            .map(|b| b.line)
            .collect();
        let mut out = Vec::new();
        for i in self.start..=self.end {
            let line = &f.code[i];
            let mut from = 0;
            while let Some(pos) = find_token(&line[from..], name) {
                let col = from + pos;
                from = col + name.len();
                if decl_lines.contains(&i) && declares_here(line, col, name) {
                    continue;
                }
                out.push(Use {
                    line: i,
                    col,
                    kind: classify_use(line, col, name),
                    method: method_name(line, col + name.len()),
                });
            }
        }
        out
    }
}

/// Whether the occurrence of `name` at `col` is the declaration site
/// itself (inside a `let` pattern before any `=`).
fn declares_here(line: &str, col: usize, _name: &str) -> bool {
    let before = &line[..col];
    match (find_token(before, "let"), before.rfind('=')) {
        (Some(_), None) => true,
        (Some(l), Some(e)) => e < l,
        (None, _) => false,
    }
}

/// Classification of a use from its immediate lexical context.
fn classify_use(line: &str, col: usize, name: &str) -> UseKind {
    let before = line[..col].trim_end();
    let after = &line[col + name.len()..];
    if before.ends_with("&mut") {
        return UseKind::BorrowMut;
    }
    if before.ends_with('&') {
        return UseKind::Borrow;
    }
    if after.starts_with('.') && method_follows(after) {
        return UseKind::Method;
    }
    let after_t = after.trim_start();
    if after_t.starts_with('=') && !after_t.starts_with("==") {
        return UseKind::Reassign;
    }
    UseKind::Read
}

/// Whether `.ident(` immediately follows (a method call on the binding).
fn method_follows(after: &str) -> bool {
    let rest = &after[1..];
    let ident_len = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .count();
    ident_len > 0 && rest[ident_len..].starts_with('(')
}

/// The method name in `.ident(..` starting at byte `at` of `line`.
fn method_name(line: &str, at: usize) -> String {
    let rest = &line[at..];
    if !rest.starts_with('.') {
        return String::new();
    }
    let ident: String = rest[1..]
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if rest[1 + ident.len()..].starts_with('(') {
        ident
    } else {
        String::new()
    }
}

/// Collapses the statement starting at line `i` through its terminating
/// `;` (bounded by `end`); returns the text and the last line consumed.
fn collapse_statement(code: &[String], i: usize, end: usize) -> (String, usize) {
    let mut out = String::new();
    for (k, line) in code.iter().enumerate().take(end + 1).skip(i) {
        out.push_str(line);
        out.push(' ');
        if line.trim_end().ends_with(';') {
            return (out, k);
        }
    }
    (out, end)
}

/// Parses one `let` statement (already collapsed) into bindings and,
/// when the initializer is `mpsc::channel`, a channel pair. `from_let` is
/// the statement text starting at the `let` keyword.
fn parse_let(stmt: &str, from_let: &str, line: usize, flow: &mut FnFlow) {
    // Pattern and the rest: split at the first top-level `=` of the
    // statement (type ascriptions cannot contain `=`).
    let Some(let_pos) = find_token(stmt, "let") else {
        return;
    };
    let after_let = &stmt[let_pos + 3..];
    let Some(eq) = top_level_eq(after_let) else {
        return;
    };
    let (pat_and_ty, init) = after_let.split_at(eq);
    let init = init[1..].trim().trim_end_matches(';').trim().to_string();
    let (pat, ty) = split_ascription(pat_and_ty);
    let names = pattern_names(&pat);
    // Channel destructure: `let (tx, rx) = mpsc::channel..`.
    if names.len() == 2 && init.contains("channel") && init.contains("mpsc") {
        flow.channels.push(ChannelPair {
            sender: names[0].clone(),
            receiver: names[1].clone(),
            payload: turbofish_payload(&init),
            line,
        });
    }
    for name in names {
        flow.bindings.push(Binding {
            name,
            line,
            ty: ty.clone(),
            init: init.clone(),
        });
    }
    let _ = from_let;
}

/// Byte offset of the first `=` at bracket depth 0 that is not part of
/// `==`, `<=`, `>=`, `!=`, `+=` etc.
fn top_level_eq(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut depth = 0i64;
    for (k, &b) in bytes.iter().enumerate() {
        match b {
            b'<' | b'(' | b'[' => depth += 1,
            b'>' | b')' | b']' => depth -= 1,
            b'=' if depth <= 0 => {
                let prev = if k > 0 { bytes[k - 1] } else { b' ' };
                let next = bytes.get(k + 1).copied().unwrap_or(b' ');
                if next != b'=' && !matches!(prev, b'=' | b'<' | b'>' | b'!' | b'+' | b'-') {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits `pat: Type` into the pattern and the ascription.
fn split_ascription(s: &str) -> (String, Option<String>) {
    // A `:` outside parens is an ascription (tuple patterns keep their
    // inner structure intact).
    let mut depth = 0i64;
    for (k, c) in s.char_indices() {
        match c {
            '(' | '<' | '[' => depth += 1,
            ')' | '>' | ']' => depth -= 1,
            ':' if depth == 0 => {
                return (
                    s[..k].trim().to_string(),
                    Some(s[k + 1..].trim().to_string()),
                );
            }
            _ => {}
        }
    }
    (s.trim().to_string(), None)
}

/// Bound names of a pattern: `x`, `mut x`, `(a, mut b)`, `(a, _)`.
fn pattern_names(pat: &str) -> Vec<String> {
    let inner = pat
        .trim()
        .strip_prefix('(')
        .and_then(|p| p.strip_suffix(')'))
        .unwrap_or(pat);
    inner
        .split(',')
        .map(|p| {
            p.trim()
                .strip_prefix("mut ")
                .unwrap_or(p.trim())
                .trim()
                .to_string()
        })
        .filter(|n| {
            !n.is_empty()
                && *n != "_"
                && n.chars().all(|c| c.is_alphanumeric() || c == '_')
                && n.chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_')
        })
        .collect()
}

/// The `T` of a `channel::<T>()` turbofish, or empty.
fn turbofish_payload(init: &str) -> String {
    let Some(p) = init.find("::<") else {
        return String::new();
    };
    let rest = &init[p + 3..];
    let mut depth = 1i64;
    for (k, c) in rest.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return rest[..k].trim().to_string();
                }
            }
            _ => {}
        }
    }
    String::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn flow_of(src: &str) -> (FnFlow, SourceFile) {
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let (_, start, end) = f.functions[0].clone();
        (FnFlow::build(&f, start, end), f)
    }

    #[test]
    fn bindings_record_type_and_init() {
        let (flow, _) = flow_of("fn f() {\n    let mut t: Picos = base + 1;\n    let u = t;\n}\n");
        assert_eq!(flow.bindings.len(), 2);
        assert_eq!(flow.bindings[0].name, "t");
        assert_eq!(flow.bindings[0].ty.as_deref(), Some("Picos"));
        assert!(flow.bindings[0].init.contains("base + 1"));
        assert_eq!(flow.bindings[1].init, "t");
    }

    #[test]
    fn channel_destructure_records_endpoints_and_payload() {
        let (flow, _) = flow_of(
            "fn f() {\n    let (tx, rx) = mpsc::channel::<(Region, Shard)>();\n    \
             let (ret_tx, from) = mpsc::channel();\n}\n",
        );
        assert_eq!(flow.channels.len(), 2);
        assert_eq!(flow.channels[0].sender, "tx");
        assert_eq!(flow.channels[0].receiver, "rx");
        assert_eq!(flow.channels[0].payload, "(Region, Shard)");
        assert_eq!(flow.channels[1].sender, "ret_tx");
        assert_eq!(flow.channels[1].payload, "");
    }

    #[test]
    fn uses_classify_borrows_methods_and_reassigns() {
        let (flow, f) = flow_of(
            "fn f() {\n    let mut sh = make();\n    take(&mut sh);\n    peek(&sh);\n    \
             sh.clone();\n    sh = make();\n    use_it(sh);\n}\n",
        );
        let uses = flow.uses_of(&f, "sh");
        let kinds: Vec<UseKind> = uses.iter().map(|u| u.kind).collect();
        assert_eq!(
            kinds,
            vec![
                UseKind::BorrowMut,
                UseKind::Borrow,
                UseKind::Method,
                UseKind::Reassign,
                UseKind::Read
            ]
        );
        assert_eq!(uses[2].method, "clone");
    }

    #[test]
    fn shadowing_attributes_uses_to_latest_binding() {
        let (flow, _) = flow_of("fn f() {\n    let x = a();\n    let x = b();\n    g(x);\n}\n");
        assert_eq!(flow.binding_at("x", 3).unwrap().init, "b()");
        assert_eq!(flow.binding_at("x", 1).unwrap().init, "a()");
    }

    #[test]
    fn multiline_initializer_collapses() {
        let (flow, _) = flow_of("fn f() {\n    let v = foo(\n        bar,\n    );\n}\n");
        assert!(flow.bindings[0].init.contains("foo("));
        assert!(flow.bindings[0].init.contains("bar"));
    }
}
