//! Engine tests: each fixture under `tests/fixtures/` contains exactly the
//! violations its name advertises, and the clean fixtures produce none.
//!
//! Fixtures are plain `.rs` files that are never compiled — the linter is
//! lexical, so the tests parse them with [`SourceFile::parse`] under a
//! model-crate path label and drive [`gmh_lint::run`] directly.

use gmh_lint::{run, Finding, LintConfig, SourceFile};

const CONFIG_BASE: &str = r#"
[lint]
model_crates = ["types", "cache", "simt"]
queue_impl = ["crates/types/src/queue.rs"]
"#;

const CONFIG_R5: &str = r#"
[lint]
model_crates = ["types", "cache", "simt"]
queue_impl = ["crates/types/src/queue.rs"]

[r5.enums.DemoStall]
file = "crates/cache/src/demo_stall.rs"
order = ["First", "Second", "Third"]
"#;

/// R7/R8 enabled. The pool fixture is parsed under the sanctioned
/// `pool_file` path, and the channel-bearing fixtures sit in `queue_impl`
/// so R2's mpsc rule stays out of the R7 assertions.
const CONFIG_R7R8: &str = r#"
[lint]
model_crates = ["types", "cache", "simt"]
queue_impl = ["crates/types/src/queue.rs", "crates/cache/src/pool.rs", "crates/cache/src/r7_bad_two_producer.rs"]

[r7]
state_root = "Shard"
pool_file = "crates/cache/src/pool.rs"
region_fns = ["run_region"]

[r8]
convert_fns = ["cycles_to_ps", "period_ps"]
conversion_home = ["crates/types/src/clock.rs"]
literal_files = ["crates/cache/src/config.rs"]
ps_types = ["Picos"]
"#;

fn base_cfg() -> LintConfig {
    LintConfig::parse(CONFIG_BASE).expect("fixture config parses")
}

fn r5_cfg() -> LintConfig {
    LintConfig::parse(CONFIG_R5).expect("fixture config parses")
}

fn r7r8_cfg() -> LintConfig {
    LintConfig::parse(CONFIG_R7R8).expect("fixture config parses")
}

/// `(rule, line)` pairs, in the engine's sorted order.
fn rule_lines(findings: &[Finding]) -> Vec<(&'static str, usize)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn r1_flags_hash_map_in_model_code() {
    let f = SourceFile::parse(
        "crates/cache/src/r1_determinism.rs",
        include_str!("fixtures/r1_determinism.rs"),
    );
    let findings = run(&base_cfg(), &[f]);
    assert_eq!(rule_lines(&findings), vec![("R1", 3)], "{findings:#?}");
    assert!(findings[0].message.contains("HashMap"));
}

#[test]
fn r2_flags_raw_vecdeque() {
    let f = SourceFile::parse(
        "crates/cache/src/r2_queues.rs",
        include_str!("fixtures/r2_queues.rs"),
    );
    let findings = run(&base_cfg(), &[f]);
    assert_eq!(rule_lines(&findings), vec![("R2", 3)], "{findings:#?}");
}

#[test]
fn r2_exempts_the_queue_implementation_itself() {
    let f = SourceFile::parse(
        "crates/types/src/queue.rs",
        include_str!("fixtures/r2_queues.rs"),
    );
    let findings = run(&base_cfg(), &[f]);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn rules_ignore_files_outside_model_crates() {
    let cfg = base_cfg();
    for fixture in [
        include_str!("fixtures/r1_determinism.rs"),
        include_str!("fixtures/r2_queues.rs"),
        include_str!("fixtures/r3_casts.rs"),
        include_str!("fixtures/r4_panics.rs"),
    ] {
        let f = SourceFile::parse("crates/exp/src/tool.rs", fixture);
        let findings = run(&cfg, &[f]);
        assert!(findings.is_empty(), "{findings:#?}");
    }
}

#[test]
fn r3_flags_narrowing_cast() {
    let f = SourceFile::parse(
        "crates/cache/src/r3_casts.rs",
        include_str!("fixtures/r3_casts.rs"),
    );
    let findings = run(&base_cfg(), &[f]);
    assert_eq!(rule_lines(&findings), vec![("R3", 4)], "{findings:#?}");
}

#[test]
fn r4_flags_unjustified_unwrap() {
    let f = SourceFile::parse(
        "crates/cache/src/r4_panics.rs",
        include_str!("fixtures/r4_panics.rs"),
    );
    let findings = run(&base_cfg(), &[f]);
    assert_eq!(rule_lines(&findings), vec![("R4", 4)], "{findings:#?}");
}

#[test]
fn r6_flags_allocation_in_hot_loop_only() {
    let f = SourceFile::parse(
        "crates/cache/src/r6_alloc.rs",
        include_str!("fixtures/r6_alloc.rs"),
    );
    let findings = run(&base_cfg(), &[f]);
    // The vec![..] and .collect() inside `cycle` (the justified site and
    // everything in the cold `reset` stays silent).
    assert_eq!(
        rule_lines(&findings),
        vec![("R6", 11), ("R6", 13)],
        "{findings:#?}"
    );
    assert!(findings[0].message.contains("vec![..]"));
    assert!(findings[0].message.contains("`cycle`"));
    assert!(findings[1].message.contains(".collect()"));
}

#[test]
fn clean_fixture_has_no_findings() {
    let f = SourceFile::parse(
        "crates/cache/src/clean.rs",
        include_str!("fixtures/clean.rs"),
    );
    let findings = run(&base_cfg(), &[f]);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn r5_flags_order_attribution_and_funnel_violations() {
    let files = [
        SourceFile::parse(
            "crates/cache/src/demo_stall.rs",
            include_str!("fixtures/r5_bad_def.rs"),
        ),
        SourceFile::parse(
            "crates/cache/src/demo_attr.rs",
            include_str!("fixtures/r5_bad_attr.rs"),
        ),
    ];
    let findings = run(&r5_cfg(), &files);
    // Sorted by (path, line): the attribution file first, then the
    // defining file.
    let expected = vec![
        ("R5", 9),  // First checked after Second in classify
        ("R5", 16), // First attributed from two functions
        ("R5", 18), // direct `.first.inc()` bypasses record()
        ("R5", 4),  // declaration order inverts the canonical order
        ("R5", 7),  // Third is never attributed
    ];
    assert_eq!(rule_lines(&findings), expected, "{findings:#?}");
    assert!(findings[0].message.contains("inverting the paper"));
    assert!(findings[1].message.contains("2 functions"));
    assert!(findings[2].message.contains("bypassing"));
    assert!(findings[3].message.contains("precedence order"));
    assert!(findings[4].message.contains("never attributed"));
}

#[test]
fn r5_accepts_canonical_single_site_attribution() {
    let files = [
        SourceFile::parse(
            "crates/cache/src/demo_stall.rs",
            include_str!("fixtures/r5_ok_def.rs"),
        ),
        SourceFile::parse(
            "crates/cache/src/demo_attr.rs",
            include_str!("fixtures/r5_ok_attr.rs"),
        ),
    ];
    let findings = run(&r5_cfg(), &files);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn r7_accepts_the_ownership_passing_pool_shape() {
    // The par.rs-shaped good case: per-worker typed channels with one
    // producer each, a cloned sender only on the untyped return channel,
    // mem::replace dispatch and a shadowing reassignment from collect().
    let f = SourceFile::parse(
        "crates/cache/src/pool.rs",
        include_str!("fixtures/r7_ok_pool.rs"),
    );
    let findings = run(&r7r8_cfg(), &[f]);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn r7_flags_aliased_and_borrowed_shard_state() {
    let f = SourceFile::parse(
        "crates/cache/src/r7_bad_alias.rs",
        include_str!("fixtures/r7_bad_alias.rs"),
    );
    let findings = run(&r7r8_cfg(), &[f]);
    let expected = vec![
        ("R7", 9),  // Arc field inside shard state
        ("R7", 20), // dispatched shard touched before collect()
        ("R7", 30), // shard dispatched by reference
        ("R7", 36), // Arc reachable from the region entry point
    ];
    assert_eq!(rule_lines(&findings), expected, "{findings:#?}");
    assert!(findings[0].message.contains("Arc"));
    assert!(findings[0].message.contains("Shard::shared"));
    assert!(findings[1].message.contains("used after being dispatched"));
    assert!(findings[2].message.contains("dispatched by reference"));
    assert!(findings[3]
        .message
        .contains("reachable from the shard-region"));
}

#[test]
fn r7_flags_second_producer_on_a_shard_channel() {
    let f = SourceFile::parse(
        "crates/cache/src/r7_bad_two_producer.rs",
        include_str!("fixtures/r7_bad_two_producer.rs"),
    );
    let findings = run(&r7r8_cfg(), &[f]);
    assert_eq!(rule_lines(&findings), vec![("R7", 13)], "{findings:#?}");
    assert!(findings[0].message.contains("exactly one producer"));
}

#[test]
fn r8_flags_unit_mixing_and_magic_time_literals() {
    let f = SourceFile::parse(
        "crates/cache/src/r8_bad_mix.rs",
        include_str!("fixtures/r8_bad_mix.rs"),
    );
    let findings = run(&r7r8_cfg(), &[f]);
    let expected = vec![
        ("R8", 11), // now_ps + budget_cycles
        ("R8", 15), // c.now_ps = 5000
    ];
    assert_eq!(rule_lines(&findings), expected, "{findings:#?}");
    assert!(findings[0].message.contains("now_ps"));
    assert!(findings[0].message.contains("budget_cycles"));
    assert!(findings[1].message.contains("bare literal `5000`"));
}

#[test]
fn r8_accepts_sanctioned_conversions_and_named_factors() {
    let f = SourceFile::parse(
        "crates/cache/src/r8_ok_convert.rs",
        include_str!("fixtures/r8_ok_convert.rs"),
    );
    let findings = run(&r7r8_cfg(), &[f]);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn allowlist_entries_suppress_matching_findings() {
    let cfg_text = format!(
        "{CONFIG_BASE}\n[[allow]]\nrule = \"R1\"\nfile = \"r1_determinism.rs\"\n\
         contains = \"HashMap\"\nreason = \"fixture test of the allowlist\"\n"
    );
    let cfg = LintConfig::parse(&cfg_text).expect("config with allow parses");
    let f = SourceFile::parse(
        "crates/cache/src/r1_determinism.rs",
        include_str!("fixtures/r1_determinism.rs"),
    );
    let findings = run(&cfg, &[f]);
    assert!(findings.is_empty(), "{findings:#?}");
}
