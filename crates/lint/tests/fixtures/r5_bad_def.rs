//! R5 fixture: declaration order inverts the canonical precedence, and
//! `Third` is never attributed anywhere.

pub enum DemoStall {
    Second,
    First,
    Third,
}
