//! Clean fixture: the patterns the rules accept — ordered collections,
//! justified casts and panics, and hash maps confined to test code.

use std::collections::BTreeMap;

pub fn histogram(xs: &[u64]) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new();
    for &x in xs {
        *out.entry(x).or_insert(0) += 1;
    }
    out
}

pub fn narrow(x: u64) -> u32 {
    // lint: allow(R3): callers pass values below 2^32 (checked upstream).
    x as u32
}

pub fn checked(x: u64) -> u32 {
    // INVARIANT: masked to 16 bits just below, so the conversion fits.
    u32::try_from(x & 0xFFFF).expect("masked to 16 bits")
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_maps_in_tests_are_exempt() {
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
    }
}
