//! Shard-isolation violations: an `Arc` inside shard state, a shard
//! dispatched by reference, and a dispatched shard touched again before
//! the collect() barrier returns it.

use std::sync::Arc;

pub struct Shard {
    pub id: usize,
    pub shared: Arc<Vec<u64>>,
}

pub struct Sim {
    shards: Vec<Shard>,
}

impl Sim {
    pub fn run_region(&mut self, pool: &Pool, region: u64) {
        let sh = take_shard(&mut self.shards);
        pool.dispatch(0, region, sh);
        let n = sh.id;
        for _ in 0..1 {
            let sh = pool.collect();
            self.shards[sh.id] = sh;
        }
        let _ = n;
    }

    pub fn run_region_borrowed(&mut self, pool: &Pool, region: u64) {
        let sh = take_shard(&mut self.shards);
        pool.dispatch(0, region, &sh);
        let _ = pool.collect();
    }
}

fn take_shard(shards: &mut Vec<Shard>) -> Shard {
    shards.pop().unwrap_or(Shard { id: 0, shared: Arc::new(Vec::new()) })
}

pub struct Pool;

impl Pool {
    pub fn dispatch(&self, _w: usize, _region: u64, _sh: Shard) {}
    pub fn collect(&self) -> Shard {
        Shard { id: 0, shared: Arc::new(Vec::new()) }
    }
}
