//! Time-unit violations: picoseconds added to cycle counts without a
//! conversion, and a magic literal assigned into a unit-tagged field
//! outside the config files.

pub struct Clk {
    pub now_ps: u64,
    pub core_cycles: u64,
}

pub fn deadline(now_ps: u64, budget_cycles: u64) -> u64 {
    now_ps + budget_cycles
}

pub fn set_timeout(c: &mut Clk) {
    c.now_ps = 5000;
}
