//! Two producers on a shard-carrying channel: cloning the sender makes
//! the dispatch order scheduler-dependent, breaking the single-producer
//! discipline the ownership-passing pool relies on.

use std::sync::mpsc;

pub struct Shard {
    pub id: usize,
}

pub fn spawn_two_producers() -> mpsc::Receiver<(u64, Shard)> {
    let (tx, rx) = mpsc::channel::<(u64, Shard)>();
    let tx2 = tx.clone();
    let _ = tx.send((0, Shard { id: 0 }));
    let _ = tx2.send((1, Shard { id: 1 }));
    rx
}
