//! R6 fixture: allocation inside a hot-loop function (a `vec![..]` and a
//! `.collect()`), an inline-justified site, and the same patterns legal in
//! a cold function.

pub struct Switch {
    grants: Vec<bool>,
}

impl Switch {
    pub fn cycle(&mut self) {
        let used = vec![false; self.grants.len()];
        let _ = used;
        let order: Vec<usize> = (0..self.grants.len()).collect();
        let _ = order;
        // lint: allow(R6): one-shot drain path, runs at most once per run.
        let justified = vec![0u8; 4];
        let _ = justified;
    }

    pub fn reset(&mut self) {
        // Cold path: allocation outside the per-cycle functions is fine.
        self.grants = vec![false; 8];
        let _all: Vec<usize> = (0..8).collect();
    }
}
