//! R5 clean fixture: one classifier checks causes in precedence order.

pub fn classify(a: bool, b: bool, c: bool) -> Option<DemoStall> {
    if a {
        return Some(DemoStall::First);
    }
    if b {
        return Some(DemoStall::Second);
    }
    if c {
        return Some(DemoStall::Third);
    }
    None
}
