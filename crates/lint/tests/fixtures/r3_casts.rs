//! R3 fixture: a narrowing cast that can silently truncate.

pub fn to_small(x: u64) -> u32 {
    x as u32
}
