//! R5 clean fixture: canonical order, single-site attribution.

pub enum DemoStall {
    First,
    Second,
    Third,
}
