//! R2 fixture: a raw VecDeque sidesteps bounded-queue back-pressure.

pub fn drain(q: &mut std::collections::VecDeque<u32>) -> Option<u32> {
    q.pop_front()
}
