//! R4 fixture: an unwrap with no written invariant.

pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
