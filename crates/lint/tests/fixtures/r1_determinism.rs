//! R1 fixture: a hash map in model code breaks replay determinism.

use std::collections::HashMap;

pub fn noop() {}
