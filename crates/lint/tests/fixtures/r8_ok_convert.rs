//! Sanctioned unit mixing: the conversion happens through a configured
//! `convert_fns` call, either on the statement itself or flowing in
//! through a named period binding. Must lint clean under R8.

pub struct Clk;

impl Clk {
    pub fn cycles_to_ps(&self, _c: u64) -> u64 {
        0
    }
    pub fn period_ps(&self) -> u64 {
        714
    }
}

pub fn deadline(now_ps: u64, budget_cycles: u64, clk: &Clk) -> u64 {
    now_ps + clk.cycles_to_ps(budget_cycles)
}

pub fn jump_bound(max_cycles: u64, clk: &Clk) -> u64 {
    let core_period = clk.period_ps();
    let t_ps = (max_cycles - 1) * core_period;
    t_ps
}
