//! R5 fixture: double attribution, inverted precedence, and a direct
//! counter bump that bypasses the record() funnel.

pub fn classify(a: bool, b: bool) -> Option<DemoStall> {
    if b {
        return Some(DemoStall::Second);
    }
    if a {
        return Some(DemoStall::First);
    }
    None
}

pub fn classify_again(a: bool, stats: &mut Stats) -> Option<DemoStall> {
    if a {
        return Some(DemoStall::First);
    }
    stats.first.inc();
    None
}
