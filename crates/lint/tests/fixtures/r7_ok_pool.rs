//! Minimal ownership-passing pool in the shape of core/src/par.rs: shards
//! move by value over per-worker channels with exactly one producer; the
//! untyped return channel carries shards home through cloned senders
//! (N producers is legitimate there — order is restored by shard id).
//! This fixture must lint clean under R7.

use std::sync::mpsc;
use std::thread;

pub struct Shard {
    pub id: usize,
    pub warps: Vec<u64>,
}

impl Shard {
    pub fn empty(id: usize) -> Shard {
        Shard { id, warps: Vec::new() }
    }
}

pub struct Pool {
    senders: Vec<mpsc::Sender<(u64, Shard)>>,
    ret_rx: mpsc::Receiver<Shard>,
}

impl Pool {
    pub fn spawn(n: usize) -> Pool {
        let (ret_tx, ret_rx) = mpsc::channel();
        let mut senders = Vec::new();
        for _ in 0..n {
            let (tx, rx) = mpsc::channel::<(u64, Shard)>();
            let ret = ret_tx.clone();
            thread::spawn(move || {
                while let Ok((region, mut shard)) = rx.recv() {
                    shard.warps.push(region);
                    let _ = ret.send(shard);
                }
            });
            senders.push(tx);
        }
        Pool { senders, ret_rx }
    }

    pub fn dispatch(&self, w: usize, region: u64, sh: Shard) {
        let _ = self.senders[w].send((region, sh));
    }

    pub fn collect(&self) -> Shard {
        match self.ret_rx.recv() {
            Ok(sh) => sh,
            Err(_) => Shard::empty(0),
        }
    }
}

pub struct Sim {
    shards: Vec<Shard>,
}

impl Sim {
    pub fn run_region(&mut self, pool: &Pool, region: u64) {
        let mut dispatched = 0;
        for w in 1..self.shards.len() {
            let sh = std::mem::replace(&mut self.shards[w], Shard::empty(w));
            pool.dispatch(w - 1, region, sh);
            dispatched += 1;
        }
        for _ in 0..dispatched {
            let sh = pool.collect();
            let id = sh.id;
            self.shards[id] = sh;
        }
    }
}
